"""The instrumented parallel SpMM engine — Algorithm 1 with cost tracking.

``SpMMEngine.multiply`` executes a real numpy SpMM (so results are exact
and testable) while simultaneously *simulating* its execution time on the
configured memory system.  Every experiment knob of the paper is a
configuration switch:

- thread allocation: RR / WaTA / EaTA (§III-B);
- prefetching: WoFP on/off with its η/σ parameters (§III-C);
- NUMA placement: NaDP / Interleave / Local (§III-D);
- streaming: ASL on/off (§III-E);
- memory mode: heterogeneous / DRAM-only / PM-only.

Per-thread simulated time follows Eq. 2 of the paper, charging the five
steps of Algorithm 1 separately (the categories of Fig. 7a):

1. ``read_index``      — per-row CSDB metadata, sequential on the sparse tier;
2. ``get_sparse_nnz``  — edge stream, sequential on the sparse tier;
3. ``get_dense_nnz``   — dense-row gathers at the Eq. 5
   entropy-interpolated bandwidth; WoFP hits are served from DRAM;
4. ``accumulate``      — CPU multiply-accumulate (memory-bound on PM-only,
   where even the scratch accumulators live in PM);
5. ``write_result``    — sequential result writes, locality per placement.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.asl import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    StreamingLoader,
    StreamPlan,
)
from repro.core.config import ExecBackend, MemoryMode, OMeGaConfig
from repro.core.eata import (
    ThreadAllocator,
    WorkloadPartition,
    make_allocator,
    record_allocation_metrics,
)
from repro.core.nadp import AccessPlan, DataPlacement, make_placement
from repro.core.wofp import (
    DisabledPrefetchPlan,
    PrefetchPlan,
    WorkloadPrefetcher,
    record_prefetch_metrics,
)
from repro.faults import FaultInjector
from repro.formats.csdb import CSDBMatrix
from repro.memsim.allocator import CapacityError
from repro.memsim.clock import SimClock
from repro.memsim.costmodel import CostModel
from repro.memsim.devices import (
    AccessPattern,
    DeviceSpec,
    Locality,
    MemoryKind,
    Operation,
)
from repro.memsim.trace import CostTrace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanTracer
from repro.parallel.scheduler import KernelExecutor, SimulatedExecutor
from repro.parallel.shared import get_shared_executor
from repro.parallel.stats import ThreadStats, summarize_thread_times
from repro.parallel.threads import get_threads_executor

#: Bytes of CSDB per-row metadata touched by ``read_index`` (degree-block
#: lookup + running offset).
INDEX_BYTES_PER_ROW = 16.0
#: Bytes per non-zero streamed by ``get_sparse_nnz`` (int32 column id +
#: float64 weight, padded).
SPARSE_BYTES_PER_NNZ = 12.0
#: Scratch read+write traffic per multiply-accumulate when the scratch
#: accumulators themselves live on PM (PM-only mode).  Each MAC pays a
#: read-modify-write whose 8 B store is amplified to Optane's 256 B
#: XPLine granularity; 48 B/MAC reflects partial write-combining.
SCRATCH_BYTES_PER_MAC = 96.0
#: Fraction of the WoFP population cost exposed on the critical path; the
#: paper populates the top-M map in a back-end thread, overlapping most
#: of the transfer with compute.
PREFETCH_EXPOSED_FRACTION = 0.2


@dataclass
class SpMMResult:
    """Outcome of one engine SpMM call.

    Attributes:
        output: the real numeric result ``A @ B`` (original row order),
            or None when ``compute=False``.
        sim_seconds: simulated end-to-end time of the operation.
        thread_times: per-thread simulated completion times (parallel
            phase only; serial overheads excluded).
        partitions: the thread allocation used.
        prefetch_plans: per-partition WoFP plans.
        stream_plan: the ASL plan (None outside heterogeneous mode).
        trace: per-category simulated cost ledger.
        kernel_wall_seconds: measured wall-clock seconds spent in the
            real kernel dispatch (0.0 when ``compute=False``); lives
            beside — never inside — the simulated time.
    """

    output: np.ndarray | None
    sim_seconds: float
    thread_times: np.ndarray
    partitions: list[WorkloadPartition]
    prefetch_plans: list[PrefetchPlan | DisabledPrefetchPlan]
    stream_plan: StreamPlan | None
    trace: CostTrace
    nnz: int
    kernel_wall_seconds: float = field(default=0.0)

    @property
    def thread_stats(self) -> ThreadStats:
        """Tail-latency summary of the parallel phase (Fig. 13)."""
        return summarize_thread_times(self.thread_times)

    @property
    def throughput_nnz_per_s(self) -> float:
        """Fig. 16's metric: non-zeros fetched per simulated second."""
        if self.sim_seconds == 0.0:
            return 0.0
        return self.nnz / self.sim_seconds

    @property
    def mean_hit_fraction(self) -> float:
        """Workload-weighted WoFP hit rate across partitions."""
        total = sum(p.nnz_count for p in self.partitions)
        if total == 0:
            return 0.0
        hits = sum(
            plan.hit_fraction * part.nnz_count
            for plan, part in zip(self.prefetch_plans, self.partitions)
        )
        return hits / total


class SpMMEngine:
    """Parallel SpMM on simulated heterogeneous memory."""

    def __init__(
        self,
        config: OMeGaConfig | None = None,
        cost_model: CostModel | None = None,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> None:
        self.config = config or OMeGaConfig()
        self.topology = self.config.topology
        self.cost_model = cost_model or CostModel()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults = faults
        self.retry_policy = retry_policy
        self._dense_device = self._device_for_dense()
        beta = self.cost_model.beta(self._dense_device, Locality.LOCAL)
        self.allocator: ThreadAllocator = make_allocator(
            self.config.allocation, beta=beta
        )
        self.placement: DataPlacement = make_placement(
            self.config.placement, self.topology
        )
        self.prefetcher: WorkloadPrefetcher | None = None
        if (
            self.config.prefetcher_enabled
            and self.config.memory_mode is MemoryMode.HETEROGENEOUS
        ):
            self.prefetcher = WorkloadPrefetcher(
                eta=self.config.eta, sigma=self.config.sigma
            )
        parallel = self.config.parallel
        if parallel.backend is ExecBackend.SHARED_MEMORY:
            self.kernel_executor: KernelExecutor = get_shared_executor(
                parallel.n_workers
            )
        elif parallel.backend is ExecBackend.THREADS:
            self.kernel_executor = get_threads_executor(parallel.n_workers)
        else:
            self.kernel_executor = SimulatedExecutor()
        pm = self.topology.device(MemoryKind.PM)
        self.loader = StreamingLoader(
            pm.bandwidth(
                Operation.READ,
                AccessPattern.SEQUENTIAL,
                Locality.LOCAL,
                threads=max(self.config.n_threads // 2, 1),
            )
        )

    # -- device/tier resolution -------------------------------------------

    def _device_for_sparse(self) -> DeviceSpec:
        if self.config.memory_mode is MemoryMode.DRAM_ONLY:
            return self.topology.device(MemoryKind.DRAM)
        return self.topology.device(MemoryKind.PM)

    def _device_for_dense(self) -> DeviceSpec:
        if self.config.memory_mode is MemoryMode.DRAM_ONLY:
            return self.topology.device(MemoryKind.DRAM)
        return self.topology.device(MemoryKind.PM)

    def _device_for_result(self) -> DeviceSpec:
        return self._device_for_dense()

    def _dram(self) -> DeviceSpec:
        return self.topology.device(MemoryKind.DRAM)

    def scaled_capacity(self, kind: MemoryKind) -> float:
        """Aggregate tier capacity after the dataset's downscale factor."""
        return self.topology.capacity(kind) / self.config.capacity_scale

    def check_dram_residency(self, working_set_bytes: float) -> None:
        """Raise :class:`CapacityError` if DRAM cannot hold a working set.

        Only meaningful in DRAM-only mode — this is how OMeGa-DRAM /
        ProNE-DRAM fail on the billion-scale graphs in Fig. 12.
        """
        if self.config.memory_mode is not MemoryMode.DRAM_ONLY:
            return
        capacity = self.scaled_capacity(MemoryKind.DRAM)
        if working_set_bytes > capacity:
            raise CapacityError(
                f"DRAM-only working set {working_set_bytes / 2**30:.2f} GiB"
                f" exceeds scaled DRAM capacity {capacity / 2**30:.2f} GiB"
            )

    # -- main entry ---------------------------------------------------------

    def multiply(
        self,
        matrix: CSDBMatrix,
        dense: np.ndarray,
        compute: bool = True,
    ) -> SpMMResult:
        """Simulated-parallel SpMM ``matrix @ dense``.

        Args:
            matrix: the sparse operand in CSDB format.
            dense: the dense operand, shape (n_cols, d).
            compute: execute the real numpy kernel (disable for
                cost-only scalability sweeps over huge synthetic inputs).

        Raises:
            CapacityError: in DRAM-only mode when the working set
                (sparse + dense + result + scratch) exceeds the scaled
                DRAM capacity.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim == 1:
            dense = dense[:, None]
        if dense.shape[0] != matrix.n_cols:
            raise ValueError(
                f"dimension mismatch: {matrix.shape} @ {dense.shape}"
            )
        d = dense.shape[1]
        sparse_bytes = matrix.nnz * SPARSE_BYTES_PER_NNZ + matrix.index_bytes()
        dense_bytes = float(matrix.n_cols * d * 8)
        result_bytes = float(matrix.n_rows * d * 8)
        self.check_dram_residency(
            sparse_bytes + 2.0 * dense_bytes + 2.0 * result_bytes
        )

        with self.tracer.span(
            "spmm", nnz=matrix.nnz, n_rows=matrix.n_rows, dim=d
        ) as span:
            result = self._multiply_instrumented(
                matrix, dense, d, sparse_bytes, dense_bytes, result_bytes,
                compute,
            )
            self.tracer.advance_sim(result.sim_seconds)
            span.set("sim_seconds", result.sim_seconds)
            span.set("kernel_wall_seconds", result.kernel_wall_seconds)
            span.set("exec_backend", self.config.parallel.backend.value)
        return result

    def _multiply_instrumented(
        self,
        matrix: CSDBMatrix,
        dense: np.ndarray,
        d: int,
        sparse_bytes: float,
        dense_bytes: float,
        result_bytes: float,
        compute: bool,
    ) -> SpMMResult:
        n_threads = self.config.n_threads
        partitions = self.allocator.allocate(matrix, n_threads)
        record_allocation_metrics(partitions, self.metrics, self.allocator.name)
        trace = CostTrace()
        clock = SimClock(n_threads)

        # Allocation overhead (serial lead-in; the paper measures it
        # under 1% of runtime).
        alloc_ops = matrix.n_rows * self.allocator.overhead_ops_per_row
        alloc_seconds = self.cost_model.compute_time(alloc_ops)
        trace.charge("allocation", alloc_seconds)
        clock.advance_all(alloc_seconds)

        col_degrees = (
            matrix.col_degrees() if self.prefetcher is not None else None
        )
        prefetch_plans: list[PrefetchPlan | DisabledPrefetchPlan] = []
        output = (
            np.zeros((matrix.n_rows, d), dtype=np.float64) if compute else None
        )
        needs_full_pass = False
        kernel_ranges: list[tuple[int, int]] = []
        for partition in partitions:
            if self.prefetcher is not None and partition.contiguous:
                plan = self.prefetcher.plan(matrix, partition, col_degrees)
            else:
                plan = DisabledPrefetchPlan()
            prefetch_plans.append(plan)
            record_prefetch_metrics(plan, partition, d, self.metrics)
            seconds = self._partition_cost(
                matrix, partition, plan, d, n_threads, trace
            )
            clock.advance(partition.thread_id, seconds)
            if compute and partition.n_rows > 0:
                if partition.contiguous:
                    kernel_ranges.append(
                        (partition.row_start, partition.row_end)
                    )
                else:
                    # Non-contiguous (natural-order) partitions are a
                    # costing construct; compute the result in one pass.
                    needs_full_pass = True
        kernel_wall = 0.0
        if compute:
            budget = self.config.parallel.chunk_budget_bytes
            # Trace propagation into the kernel dispatch: worker (or
            # serial per-partition) spans parent under the open "spmm"
            # span and carry this tracer's trace_id across the process
            # boundary.  Skipped entirely on the null tracer.
            trace_ctx = None
            span_sink = None
            if not isinstance(self.tracer, NullTracer):
                from repro.obs.live import TraceContext

                parent = self.tracer.current_span
                trace_ctx = TraceContext(
                    trace_id=self.tracer.trace_id,
                    parent_span_id=(
                        parent.span_id if parent is not None else None
                    ),
                    live_path=self.tracer.live_path,
                )
                span_sink = self.tracer.attach
            wall_start = time.perf_counter()
            if needs_full_pass:
                output[:] = matrix.spmm(dense, budget_bytes=budget)
            else:
                stats = getattr(self.kernel_executor, "stats", None)
                before = (
                    (
                        stats.plans,
                        stats.shared_cache_hits,
                        stats.shared_cache_misses,
                        stats.invalidations,
                    )
                    if stats is not None
                    else None
                )
                self.kernel_executor.run_partitions(
                    matrix,
                    dense,
                    kernel_ranges,
                    output,
                    budget_bytes=budget,
                    trace_ctx=trace_ctx,
                    span_sink=span_sink,
                )
                if stats is not None and before is not None:
                    # Warm-path observability: fold the executor's
                    # counters into the run's metrics as deltas, so
                    # cache reuse and per-call submission overhead show
                    # up in reports without the executor knowing about
                    # the registry.
                    self.metrics.counter("spmm.executor.plans").inc(
                        stats.plans - before[0]
                    )
                    self.metrics.counter("spmm.executor.cache_hits").inc(
                        stats.shared_cache_hits - before[1]
                    )
                    self.metrics.counter("spmm.executor.cache_misses").inc(
                        stats.shared_cache_misses - before[2]
                    )
                    self.metrics.counter("spmm.executor.invalidations").inc(
                        stats.invalidations - before[3]
                    )
                    self.metrics.counter(
                        "spmm.executor.submit_wall_seconds"
                    ).inc(stats.last_submit_wall_s)
            kernel_wall = time.perf_counter() - wall_start
            self.metrics.counter("spmm.kernel_wall_seconds").inc(kernel_wall)
        thread_times = clock.thread_times
        makespan = clock.synchronize()

        # Serial tail: NaDP's cross-socket result stitch.
        merge_fraction = self.placement.access_plan(0).merge_remote_write_fraction
        if merge_fraction > 0.0:
            # The stitch is itself parallel: every thread ships its share
            # of the result across the socket link.
            sharing = max(1, math.ceil(n_threads / self.topology.n_sockets))
            merge_seconds = self.cost_model.access_time(
                self._device_for_result(),
                Operation.WRITE,
                AccessPattern.SEQUENTIAL,
                Locality.REMOTE,
                merge_fraction * result_bytes / n_threads,
                threads_sharing=sharing,
            )
            trace.charge("merge", merge_seconds, merge_fraction * result_bytes)
            clock.advance_all(merge_seconds)

        # ASL: stage the dense operand between pipeline stages, overlapped
        # with this SpMM's compute.
        stream_plan: StreamPlan | None = None
        if self.config.memory_mode is MemoryMode.HETEROGENEOUS:
            dram_budget = self.config.dram_headroom * self.scaled_capacity(
                MemoryKind.DRAM
            )
            if self.config.streaming_enabled:
                stream_plan = self.loader.plan(
                    matrix.n_cols, d, dram_budget, sparse_bytes
                )
                compute_overlap = makespan
            else:
                stream_plan = self.loader.plan(matrix.n_cols, d, 0.0, sparse_bytes)
                compute_overlap = 0.0
            derate = self.faults.pm_derate() if self.faults is not None else 1.0
            if derate < 1.0:
                # A degraded PM tier stretches the transfer; the plan's
                # batch structure is unchanged.
                stream_plan = replace(
                    stream_plan,
                    total_load_seconds=stream_plan.total_load_seconds / derate,
                )
            outcome = self.loader.load(
                stream_plan,
                compute_overlap,
                metrics=self.metrics,
                faults=self.faults,
                retry=self.retry_policy,
            )
            trace.charge("stream_load", outcome.exposed_seconds, dense_bytes)
            if outcome.retry_seconds > 0.0:
                trace.charge("stream_retry", outcome.retry_seconds)
            clock.advance_all(outcome.total_seconds)

        self.metrics.counter("spmm.calls").inc()
        self.metrics.counter("spmm.nnz").inc(matrix.nnz)
        self.metrics.counter("spmm.sim_seconds").inc(clock.makespan)
        return SpMMResult(
            output=output,
            sim_seconds=clock.makespan,
            thread_times=thread_times,
            partitions=partitions,
            prefetch_plans=prefetch_plans,
            stream_plan=stream_plan,
            trace=trace,
            nnz=matrix.nnz,
            kernel_wall_seconds=kernel_wall,
        )

    # -- per-partition costing ----------------------------------------------

    def _partition_cost(
        self,
        matrix: CSDBMatrix,
        partition: WorkloadPartition,
        prefetch: PrefetchPlan | DisabledPrefetchPlan,
        d: int,
        n_threads: int,
        trace: CostTrace,
    ) -> float:
        """Eq. 2: simulated seconds for one thread's workload."""
        if partition.nnz_count == 0 and partition.n_rows == 0:
            return 0.0
        socket = self.topology.socket_of_thread(partition.thread_id, n_threads)
        plan: AccessPlan = self.placement.access_plan(socket)
        sharing = max(1, math.ceil(n_threads / self.topology.n_sockets))
        sparse_dev = self._device_for_sparse()
        dense_dev = self._device_for_dense()
        result_dev = self._device_for_result()
        dram = self._dram()
        w = partition.nnz_count
        rows = partition.n_rows
        z = partition.z_entropy

        # (1) read_index — sequential row-metadata reads.
        index_bytes = rows * INDEX_BYTES_PER_ROW
        t_index = self._split_locality(
            sparse_dev,
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            index_bytes,
            plan.sparse_local_fraction,
            sharing,
        )
        trace.charge("read_index", t_index, index_bytes)

        # (2) get_sparse_nnz — sequential edge-stream reads.
        sparse_bytes = w * SPARSE_BYTES_PER_NNZ
        t_sparse = self._split_locality(
            sparse_dev,
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            sparse_bytes,
            plan.sparse_local_fraction,
            sharing,
        )
        trace.charge("get_sparse_nnz", t_sparse, sparse_bytes)

        # (3) get_dense_nnz — scattered dense-row gathers at Eq. 5
        # bandwidth; WoFP hits come from DRAM.
        dense_bytes = float(w * d * 8)
        hit_bytes = dense_bytes * prefetch.hit_fraction
        miss_bytes = dense_bytes - hit_bytes
        t_dense = 0.0
        local_share = plan.dense_local_fraction
        if hit_bytes > 0.0:
            # The pinned rows live in DRAM wherever the placement policy
            # put them: NaDP keeps them socket-local, the OS policies
            # spread them and pay scattered cross-socket traffic.
            t_dense += self.cost_model.entropy_access_time(
                dram, Locality.LOCAL, hit_bytes * local_share, z, sharing
            )
            t_dense += self.cost_model.entropy_access_time(
                dram,
                Locality.REMOTE,
                hit_bytes * (1.0 - local_share),
                z,
                sharing,
            )
        if miss_bytes > 0.0:
            t_dense += self.cost_model.entropy_access_time(
                dense_dev, Locality.LOCAL, miss_bytes * local_share, z, sharing
            )
            t_dense += self.cost_model.entropy_access_time(
                dense_dev,
                Locality.REMOTE,
                miss_bytes * (1.0 - local_share),
                z,
                sharing,
            )
        t_dense *= self.config.kernel_slowdown
        trace.charge("get_dense_nnz", t_dense, dense_bytes)

        # (4) accumulate — CPU-bound, except PM-only where the scratch
        # accumulators themselves live on PM and every MAC pays a PM
        # read-modify-write.
        macs = float(w * d)
        t_acc = self.cost_model.compute_time(macs)
        if self.config.memory_mode is MemoryMode.PM_ONLY:
            scratch_bytes = macs * SCRATCH_BYTES_PER_MAC
            t_scratch = self.cost_model.access_time(
                sparse_dev,
                Operation.WRITE,
                AccessPattern.RANDOM,
                Locality.LOCAL,
                scratch_bytes,
                sharing,
            )
            t_acc = max(t_acc, t_scratch)
        t_acc *= self.config.kernel_slowdown
        trace.charge("accumulate", t_acc)

        # (5) write_result — sequential result writes.
        result_bytes = float(rows * d * 8)
        t_write = self._split_locality(
            result_dev,
            Operation.WRITE,
            AccessPattern.SEQUENTIAL,
            result_bytes,
            plan.write_local_fraction,
            sharing,
        )
        trace.charge("write_result", t_write, result_bytes)

        # WoFP overhead: populate the top-M map (one PM->DRAM transfer of
        # the pinned rows, mostly overlapped by the back-end thread) plus
        # hash maintenance.
        t_prefetch = 0.0
        if prefetch.capacity > 0:
            pinned = prefetch.pinned_bytes(d)
            t_load = self.cost_model.access_time(
                dense_dev,
                Operation.READ,
                AccessPattern.SEQUENTIAL,
                Locality.LOCAL,
                pinned,
                sharing,
            )
            t_prefetch = t_load * PREFETCH_EXPOSED_FRACTION
            t_prefetch += self.cost_model.compute_time(prefetch.maintenance_ops)
            trace.charge("prefetch", t_prefetch, pinned)

        return t_index + t_sparse + t_dense + t_acc + t_write + t_prefetch

    def _split_locality(
        self,
        device: DeviceSpec,
        op: Operation,
        pattern: AccessPattern,
        nbytes: float,
        local_fraction: float,
        sharing: int,
    ) -> float:
        """Cost of a batch split between local and remote accesses."""
        seconds = 0.0
        local_bytes = nbytes * local_fraction
        remote_bytes = nbytes - local_bytes
        if local_bytes > 0.0:
            seconds += self.cost_model.access_time(
                device, op, pattern, Locality.LOCAL, local_bytes, sharing
            )
        if remote_bytes > 0.0:
            seconds += self.cost_model.access_time(
                device, op, pattern, Locality.REMOTE, remote_bytes, sharing
            )
        return seconds
