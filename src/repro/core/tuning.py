"""Autotuning of WoFP's empirical parameters (eta, sigma).

The paper sets the prefetcher-type threshold ``eta`` and the prefetch
size ``sigma`` empirically per deployment (Fig. 19 b/c).  Downstream
users shouldn't have to sweep by hand: :func:`tune_prefetcher` grid
searches the simulated SpMM cost on the actual graph — cheap, because
cost simulation skips the numerics — and returns the best setting with
the full sweep attached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import OMeGaConfig
from repro.core.spmm import SpMMEngine
from repro.formats.csdb import CSDBMatrix

#: Default grids, bracketing the paper's Fig. 19 sweep ranges.
DEFAULT_ETA_GRID = (0.001, 0.005, 0.01, 0.05, 0.1)
DEFAULT_SIGMA_GRID = (0.05, 0.1, 0.2, 0.3, 0.4)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a prefetcher parameter search.

    Attributes:
        eta / sigma: the winning setting.
        sim_seconds: simulated SpMM time at the winner.
        baseline_seconds: simulated time at the starting configuration.
        sweep: {(eta, sigma): sim_seconds} for every grid point.
    """

    eta: float
    sigma: float
    sim_seconds: float
    baseline_seconds: float
    sweep: dict[tuple[float, float], float]

    @property
    def improvement(self) -> float:
        """Fractional time saved versus the starting configuration."""
        if self.baseline_seconds == 0.0:
            return 0.0
        return 1.0 - self.sim_seconds / self.baseline_seconds

    def config(self, base: OMeGaConfig) -> OMeGaConfig:
        """The base configuration with the tuned parameters applied."""
        return base.with_overrides(eta=self.eta, sigma=self.sigma)


def tune_prefetcher(
    matrix: CSDBMatrix,
    config: OMeGaConfig | None = None,
    eta_grid: tuple[float, ...] = DEFAULT_ETA_GRID,
    sigma_grid: tuple[float, ...] = DEFAULT_SIGMA_GRID,
    dim: int | None = None,
    seed: int = 0,
) -> TuningResult:
    """Grid-search (eta, sigma) by simulated SpMM cost on ``matrix``.

    Args:
        matrix: the sparse operand the deployment will run on.
        config: starting configuration (defaults to ``OMeGaConfig()``);
            its own (eta, sigma) define the baseline.
        eta_grid / sigma_grid: candidate values.
        dim: dense width used for costing (defaults to ``config.dim``).
        seed: seed of the costing operand.

    Returns:
        The best setting with the full sweep attached.
    """
    if not eta_grid or not sigma_grid:
        raise ValueError("eta_grid and sigma_grid must be non-empty")
    config = config or OMeGaConfig()
    dim = dim or config.dim
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((matrix.n_cols, dim))

    def cost(eta: float, sigma: float) -> float:
        engine = SpMMEngine(config.with_overrides(eta=eta, sigma=sigma))
        return engine.multiply(matrix, dense, compute=False).sim_seconds

    baseline = cost(config.eta, config.sigma)
    sweep: dict[tuple[float, float], float] = {}
    for eta in eta_grid:
        for sigma in sigma_grid:
            sweep[(eta, sigma)] = cost(eta, sigma)
    best_eta, best_sigma = min(sweep, key=sweep.get)
    return TuningResult(
        eta=best_eta,
        sigma=best_sigma,
        sim_seconds=sweep[(best_eta, best_sigma)],
        baseline_seconds=baseline,
        sweep=sweep,
    )
