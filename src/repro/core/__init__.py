"""OMeGa core: the paper's primary contribution.

- :mod:`repro.core.config` — configuration of every experiment arm;
- :mod:`repro.core.eata` — entropy-aware thread allocation (+ RR/WaTA);
- :mod:`repro.core.wofp` — workload feature-aware prefetcher;
- :mod:`repro.core.nadp` — NUMA-aware data placement (+ OS policies);
- :mod:`repro.core.asl` — asynchronous adaptive streaming loading;
- :mod:`repro.core.spmm` — the instrumented parallel SpMM engine;
- :mod:`repro.core.embedding` — the end-to-end ProNE-on-heterogeneous-
  memory embedding pipeline.
"""

from repro.core.asl import (
    DEFAULT_RETRY_POLICY,
    LoadOutcome,
    RetryPolicy,
    StreamingLoader,
    StreamPlan,
    optimal_partitions,
)
from repro.core.config import (
    AllocationScheme,
    ExecBackend,
    MemoryMode,
    OMeGaConfig,
    ParallelConfig,
    PlacementScheme,
    omega_config,
    omega_dram_config,
    omega_pm_config,
)
from repro.core.eata import (
    AllocatorContext,
    EntropyAwareAllocator,
    NaturalOrderRoundRobinAllocator,
    RoundRobinAllocator,
    ThreadAllocator,
    WorkloadBalancedAllocator,
    WorkloadPartition,
    make_allocator,
)
from repro.core.embedding import (
    PIPELINE_STAGES,
    EmbeddingResult,
    OMeGaEmbedder,
    PipelineRun,
    PipelineState,
)
from repro.core.operators import OperatorResult, OperatorSuite
from repro.core.tuning import TuningResult, tune_prefetcher
from repro.core.nadp import (
    FALLBACK_ORDER,
    AccessPlan,
    DataPlacement,
    InterleavePlacement,
    LocalPlacement,
    NaDPPlacement,
    TierFallback,
    make_placement,
    plan_tier_fallback,
)
from repro.core.spmm import SpMMEngine, SpMMResult
from repro.core.wofp import PrefetchPlan, WorkloadPrefetcher

__all__ = [
    "AccessPlan",
    "AllocationScheme",
    "AllocatorContext",
    "DEFAULT_RETRY_POLICY",
    "DataPlacement",
    "EmbeddingResult",
    "EntropyAwareAllocator",
    "ExecBackend",
    "FALLBACK_ORDER",
    "InterleavePlacement",
    "LoadOutcome",
    "LocalPlacement",
    "MemoryMode",
    "NaDPPlacement",
    "NaturalOrderRoundRobinAllocator",
    "OMeGaConfig",
    "OMeGaEmbedder",
    "OperatorResult",
    "OperatorSuite",
    "PIPELINE_STAGES",
    "ParallelConfig",
    "PipelineRun",
    "PipelineState",
    "PlacementScheme",
    "PrefetchPlan",
    "RetryPolicy",
    "RoundRobinAllocator",
    "SpMMEngine",
    "SpMMResult",
    "StreamPlan",
    "StreamingLoader",
    "ThreadAllocator",
    "TierFallback",
    "TuningResult",
    "WorkloadBalancedAllocator",
    "WorkloadPartition",
    "WorkloadPrefetcher",
    "make_allocator",
    "make_placement",
    "plan_tier_fallback",
    "omega_config",
    "omega_dram_config",
    "omega_pm_config",
    "optimal_partitions",
    "tune_prefetcher",
]
