"""NaDP — NUMA-aware data placement (§III-D).

The paper's Fig. 9 characterization shows PM's asymmetry under NUMA:
sequential *reads* are nearly locality-insensitive, while *writes*
strongly prefer the local socket.  NaDP therefore enforces **global
sequential read, local write**:

1. *NUMA-aware memory allocation* — the sparse matrix is row-partitioned
   and the dense matrix column-partitioned across sockets;
2. *CPU-binding based computing* — threads are bound to sockets and
   multiply every (local or remote, but always sequential) sparse row
   chunk against their socket-local dense column chunk;
3. *Local-priority based updating* — intermediate results live in
   socket-local buffers; only the final sub-matrix stitch crosses
   sockets.

Each policy is expressed as an :class:`AccessPlan` per thread socket —
the locality mix of the three traffic classes of Algorithm 1 — consumed
by the SpMM engine's cost model.  The OS policies the paper compares
against (Interleaved, Local) are provided as alternative plans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MemoryMode, PlacementScheme
from repro.memsim.allocator import PlacementPolicy
from repro.memsim.numa import NumaTopology


@dataclass(frozen=True)
class AccessPlan:
    """Locality mix of one thread's SpMM traffic.

    Attributes:
        sparse_local_fraction: share of sparse-operand reads that are
            socket-local (always *sequential* either way under NaDP).
        dense_local_fraction: share of dense-operand reads that are local.
        write_local_fraction: share of result writes that are local.
        merge_remote_write_fraction: share of the final result that must
            cross sockets once, in the stitch step (charged serially).
    """

    sparse_local_fraction: float
    dense_local_fraction: float
    write_local_fraction: float
    merge_remote_write_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "sparse_local_fraction",
            "dense_local_fraction",
            "write_local_fraction",
            "merge_remote_write_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class DataPlacement:
    """Base class: yields an :class:`AccessPlan` per thread socket."""

    name = "base"
    #: How buffers are handed to the HeterogeneousAllocator.
    allocator_policy = PlacementPolicy.LOCAL

    def __init__(self, topology: NumaTopology) -> None:
        self.topology = topology

    def access_plan(self, thread_socket: int) -> AccessPlan:
        """Locality mix for threads bound to ``thread_socket``."""
        raise NotImplementedError


class NaDPPlacement(DataPlacement):
    """The paper's placement: global sequential read, local write.

    Sparse chunks are spread across sockets, so a thread reads
    ``1/n_sockets`` of the sparse stream locally and the rest remotely —
    all sequential, which Fig. 9 shows is nearly free.  Dense reads and
    intermediate writes are fully local; the final stitch moves
    ``(n-1)/n`` of the result across sockets once.
    """

    name = "NaDP"
    allocator_policy = PlacementPolicy.EXPLICIT

    def access_plan(self, thread_socket: int) -> AccessPlan:
        n = self.topology.n_sockets
        return AccessPlan(
            sparse_local_fraction=1.0 / n,
            dense_local_fraction=1.0,
            write_local_fraction=1.0,
            merge_remote_write_fraction=(n - 1) / n,
        )


class InterleavePlacement(DataPlacement):
    """OS Interleaved policy: pages round-robin across sockets.

    Every traffic class is local with probability ``1/n_sockets`` —
    including writes, which is exactly what NaDP eliminates.
    """

    name = "Interleave"
    allocator_policy = PlacementPolicy.INTERLEAVE

    def access_plan(self, thread_socket: int) -> AccessPlan:
        n = self.topology.n_sockets
        return AccessPlan(
            sparse_local_fraction=1.0 / n,
            dense_local_fraction=1.0 / n,
            write_local_fraction=1.0 / n,
            merge_remote_write_fraction=0.0,
        )


class LocalPlacement(DataPlacement):
    """OS Local (first-touch) policy: everything lands on socket 0.

    Socket-0 threads enjoy full locality; every other socket's threads
    access everything remotely — the pathological case for writes.
    """

    name = "Local"
    allocator_policy = PlacementPolicy.LOCAL

    def access_plan(self, thread_socket: int) -> AccessPlan:
        local = 1.0 if thread_socket == 0 else 0.0
        return AccessPlan(
            sparse_local_fraction=local,
            dense_local_fraction=local,
            write_local_fraction=local,
            merge_remote_write_fraction=0.0,
        )


def make_placement(scheme: object, topology: NumaTopology) -> DataPlacement:
    """Factory mapping a :class:`PlacementScheme` to a placement."""
    scheme = PlacementScheme(scheme)
    if scheme is PlacementScheme.NADP:
        return NaDPPlacement(topology)
    if scheme is PlacementScheme.INTERLEAVE:
        return InterleavePlacement(topology)
    return LocalPlacement(topology)


#: NaDP's fallback order on a PM-tier fault, most to least preferred.
FALLBACK_ORDER = ("local_dram", "remote_dram", "asl_replan")


@dataclass(frozen=True)
class TierFallback:
    """One step of NaDP's graceful-degradation ladder.

    Attributes:
        action: the :data:`FALLBACK_ORDER` entry chosen.
        config_overrides: :class:`~repro.core.config.OMeGaConfig`
            overrides realising the re-placement.
    """

    action: str
    config_overrides: dict


def plan_tier_fallback(
    working_set_bytes: float,
    dram_capacity_bytes: float,
    n_sockets: int,
    dram_headroom: float,
) -> TierFallback:
    """Choose where hot structures go when the PM tier drops out.

    Fallback order (the degradation ladder a production deployment
    walks instead of aborting):

    1. **local DRAM** — the working set fits one socket's share of
       DRAM: run DRAM-only with first-touch local placement;
    2. **remote DRAM** — it fits aggregate DRAM only: run DRAM-only
       with interleaved placement, paying cross-socket traffic;
    3. **re-plan ASL** — DRAM cannot hold it at all: stay on the
       surviving PM capacity but halve the streaming budget, which
       raises Eq. 9's partition count and shrinks every batch.
    """
    if working_set_bytes < 0:
        raise ValueError(
            f"working_set_bytes must be >= 0, got {working_set_bytes}"
        )
    if n_sockets < 1:
        raise ValueError(f"n_sockets must be >= 1, got {n_sockets}")
    if working_set_bytes <= dram_capacity_bytes / n_sockets:
        return TierFallback(
            action="local_dram",
            config_overrides={
                "memory_mode": MemoryMode.DRAM_ONLY,
                "placement": PlacementScheme.LOCAL,
                "streaming_enabled": False,
                "prefetcher_enabled": False,
            },
        )
    if working_set_bytes <= dram_capacity_bytes:
        return TierFallback(
            action="remote_dram",
            config_overrides={
                "memory_mode": MemoryMode.DRAM_ONLY,
                "placement": PlacementScheme.INTERLEAVE,
                "streaming_enabled": False,
                "prefetcher_enabled": False,
            },
        )
    return TierFallback(
        action="asl_replan",
        config_overrides={"dram_headroom": dram_headroom / 2.0},
    )
