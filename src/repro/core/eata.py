"""Thread allocation for parallel SpMM: RR, WaTA and the paper's EaTA.

A *workload partition* is a contiguous run of CSDB rows handed to one
thread (``rst``/``red``/``bst`` of Algorithm 1).  Three allocators are
provided:

- :class:`RoundRobinAllocator` (RR) — equal row counts per thread, the
  default of parallel toolkits; ignores skew entirely.
- :class:`WorkloadBalancedAllocator` (WaTA) — equal nnz per thread
  (Huang et al.); balances bytes but not access randomness, so tail
  latency remains (Fig. 13a).
- :class:`EntropyAwareAllocator` (EaTA, Algorithm 2) — measures each
  candidate workload's entropy (Eq. 3) and rescales it by Eq. 7 so the
  *predicted completion times* equalize, balancing work and tail latency
  simultaneously.

All allocators are O(|V|) online using prefix-sum arrays cached per
matrix in :class:`AllocatorContext`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.csdb import CSDBMatrix
from repro.obs.metrics import MetricsRegistry

#: Histogram buckets for normalized entropy Z(H) in [0, 1].
Z_ENTROPY_BUCKETS = tuple(i / 10.0 for i in range(1, 11))


def record_allocation_metrics(
    partitions: "list[WorkloadPartition]",
    metrics: MetricsRegistry,
    allocator_name: str = "",
) -> None:
    """Per-partition entropy/workload telemetry for one allocation.

    Gauges carry the latest allocation's per-thread view (what EaTA's
    Eq. 7 rescaling balanced); the nnz-imbalance gauge (max/mean) is the
    straggler indicator behind the Fig. 13 tail latencies.
    """
    nnz_counts = [p.nnz_count for p in partitions]
    for p in partitions:
        metrics.gauge("eata.partition.z_entropy", thread=p.thread_id).set(
            p.z_entropy
        )
        metrics.gauge("eata.partition.nnz", thread=p.thread_id).set(
            p.nnz_count
        )
        metrics.histogram(
            "eata.z_entropy_dist", buckets=Z_ENTROPY_BUCKETS
        ).observe(p.z_entropy)
    metrics.counter("eata.allocations", allocator=allocator_name or "?").inc()
    metrics.gauge("eata.partitions").set(len(partitions))
    mean_nnz = sum(nnz_counts) / max(len(nnz_counts), 1)
    if mean_nnz > 0:
        metrics.gauge("eata.nnz_imbalance").set(max(nnz_counts) / mean_nnz)


@dataclass(frozen=True)
class WorkloadPartition:
    """The workload assigned to one thread (Algorithm 1's inputs).

    Attributes:
        thread_id: owning logical thread.
        row_start / row_end: CSDB row range [rst, red).
        nnz_start / nnz_end: edge-array range [bst, bst + W_i).
        entropy: Eq. 3 entropy H_i of the workload (nats).
        z_entropy: normalized entropy Z(H_i) = H_i / log|V|, in [0, 1].
        scatter: the paper's inherent scatter factor W_sca
            (mean nnz per row divided by |V|).
    """

    thread_id: int
    row_start: int
    row_end: int
    nnz_start: int
    nnz_end: int
    entropy: float
    z_entropy: float
    scatter: float
    #: False for partitions over non-contiguous CSDB rows (the
    #: natural-order allocator); such partitions carry explicit counts.
    contiguous: bool = True
    rows_override: int | None = None
    nnz_override: int | None = None

    @property
    def n_rows(self) -> int:
        """Rows_i — number of sparse-matrix rows in the workload."""
        if self.rows_override is not None:
            return self.rows_override
        return self.row_end - self.row_start

    @property
    def nnz_count(self) -> int:
        """W_i — number of non-zeros in the workload."""
        if self.nnz_override is not None:
            return self.nnz_override
        return self.nnz_end - self.nnz_start

    @property
    def is_empty(self) -> bool:
        """True when the thread received no work."""
        return self.nnz_count == 0 and self.n_rows == 0


class AllocatorContext:
    """Prefix-sum arrays for O(1) entropy/workload queries on row ranges.

    Eq. 3 over rows [a, b) with degrees ``d_j`` and total ``W`` reduces to
    ``H = log W - (sum d_j log d_j) / W``, so two prefix arrays (nnz and
    ``d log d``) answer any range query in constant time.
    """

    def __init__(self, matrix: CSDBMatrix) -> None:
        self.matrix = matrix
        self.n_rows = matrix.n_rows
        degrees = matrix.row_degrees().astype(np.float64)
        self.nnz_prefix = matrix.nnz_prefix()
        dlogd = np.zeros_like(degrees)
        positive = degrees > 0
        dlogd[positive] = degrees[positive] * np.log(degrees[positive])
        self.dlogd_prefix = np.concatenate([[0.0], np.cumsum(dlogd)])
        self.log_v = float(np.log(max(self.n_rows, 2)))
        self.total_nnz = int(self.nnz_prefix[-1])

    def workload(self, row_start: int, row_end: int) -> int:
        """W_i: nnz in rows [row_start, row_end)."""
        return int(self.nnz_prefix[row_end] - self.nnz_prefix[row_start])

    def entropy(self, row_start: int, row_end: int) -> float:
        """Eq. 3 entropy of rows [row_start, row_end), in nats."""
        w = self.workload(row_start, row_end)
        if w == 0:
            return 0.0
        dlogd = self.dlogd_prefix[row_end] - self.dlogd_prefix[row_start]
        return max(float(np.log(w) - dlogd / w), 0.0)

    def z_entropy(self, row_start: int, row_end: int) -> float:
        """Normalized entropy Z(H) = H / log|V|, clipped to [0, 1]."""
        return min(self.entropy(row_start, row_end) / self.log_v, 1.0)

    def scatter(self, row_start: int, row_end: int) -> float:
        """The paper's W_sca: mean nnz per row over |V| columns."""
        n_rows = row_end - row_start
        if n_rows == 0:
            return 0.0
        w = self.workload(row_start, row_end)
        return (w / n_rows) / max(self.matrix.n_cols, 1)

    def row_at_workload(self, target_nnz: float, row_start: int = 0) -> int:
        """Smallest row end such that rows [row_start, end) hold at least
        ``target_nnz`` non-zeros (clamped to [row_start+1, n_rows])."""
        goal = self.nnz_prefix[row_start] + target_nnz
        end = int(np.searchsorted(self.nnz_prefix, goal, side="left"))
        return min(max(end, row_start + 1), self.n_rows)

    def make_partition(
        self, thread_id: int, row_start: int, row_end: int
    ) -> WorkloadPartition:
        """Materialize a :class:`WorkloadPartition` for a row range."""
        return WorkloadPartition(
            thread_id=thread_id,
            row_start=row_start,
            row_end=row_end,
            nnz_start=int(self.nnz_prefix[row_start]),
            nnz_end=int(self.nnz_prefix[row_end]),
            entropy=self.entropy(row_start, row_end),
            z_entropy=self.z_entropy(row_start, row_end),
            scatter=self.scatter(row_start, row_end),
        )


class ThreadAllocator:
    """Base class: splits a CSDB matrix's rows across threads."""

    #: Approximate bookkeeping operations per row scanned, used by the
    #: engine to charge the (sub-1%) allocation overhead of §IV-C.
    overhead_ops_per_row: float = 1.0

    name = "base"

    def allocate(
        self, matrix: CSDBMatrix, n_threads: int
    ) -> list[WorkloadPartition]:
        """Return exactly ``n_threads`` partitions covering all rows."""
        raise NotImplementedError

    @staticmethod
    def _check(n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")


class RoundRobinAllocator(ThreadAllocator):
    """RR: contiguous equal-*row* chunks (the parallel-toolkit default)."""

    name = "RR"
    overhead_ops_per_row = 0.0

    def allocate(
        self, matrix: CSDBMatrix, n_threads: int
    ) -> list[WorkloadPartition]:
        self._check(n_threads)
        ctx = AllocatorContext(matrix)
        boundaries = np.linspace(0, ctx.n_rows, n_threads + 1).astype(np.int64)
        return [
            ctx.make_partition(t, int(boundaries[t]), int(boundaries[t + 1]))
            for t in range(n_threads)
        ]


class NaturalOrderRoundRobinAllocator(ThreadAllocator):
    """RR over the *original* row order — the CSR-system behaviour.

    ProNE-style systems split unsorted CSR rows into equal contiguous
    chunks.  Mixing degrees balances the per-chunk byte counts (unlike
    RR over degree-sorted CSDB rows) but every chunk inherits the
    graph's full degree mix, so all of them run at the scattered end of
    the Eq. 5 bandwidth curve.  Partitions are non-contiguous in CSDB
    space and carry explicit counts; the engine computes the numeric
    result with a single full pass instead of per-partition slices.
    """

    name = "natural-RR"
    overhead_ops_per_row = 0.0

    def allocate(
        self, matrix: CSDBMatrix, n_threads: int
    ) -> list[WorkloadPartition]:
        self._check(n_threads)
        log_v = float(np.log(max(matrix.n_rows, 2)))
        degrees_natural = matrix.row_degrees()[matrix.inv_perm].astype(
            np.float64
        )
        boundaries = np.linspace(0, matrix.n_rows, n_threads + 1).astype(
            np.int64
        )
        partitions: list[WorkloadPartition] = []
        for t in range(n_threads):
            chunk = degrees_natural[boundaries[t] : boundaries[t + 1]]
            w = float(chunk.sum())
            rows = len(chunk)
            if w > 0:
                positive = chunk[chunk > 0]
                entropy = max(
                    float(np.log(w) - (positive * np.log(positive)).sum() / w),
                    0.0,
                )
            else:
                entropy = 0.0
            scatter = (w / rows) / matrix.n_cols if rows else 0.0
            partitions.append(
                WorkloadPartition(
                    thread_id=t,
                    row_start=0,
                    row_end=0,
                    nnz_start=0,
                    nnz_end=0,
                    entropy=entropy,
                    z_entropy=min(entropy / log_v, 1.0),
                    scatter=scatter,
                    contiguous=False,
                    rows_override=rows,
                    nnz_override=int(w),
                )
            )
        return partitions


class WorkloadBalancedAllocator(ThreadAllocator):
    """WaTA: equal-*nnz* chunks (total_workload / #threads each)."""

    name = "WaTA"
    overhead_ops_per_row = 0.5

    def allocate(
        self, matrix: CSDBMatrix, n_threads: int
    ) -> list[WorkloadPartition]:
        self._check(n_threads)
        ctx = AllocatorContext(matrix)
        targets = np.linspace(0, ctx.total_nnz, n_threads + 1)
        partitions: list[WorkloadPartition] = []
        row = 0
        for t in range(n_threads):
            if t == n_threads - 1:
                end = ctx.n_rows
            else:
                end = int(
                    np.searchsorted(ctx.nnz_prefix, targets[t + 1], side="left")
                )
                end = min(max(end, row), ctx.n_rows)
            partitions.append(ctx.make_partition(t, row, end))
            row = end
        return partitions


class EntropyAwareAllocator(ThreadAllocator):
    """EaTA (Algorithm 2): entropy-aware workload rescaling.

    For each thread the dynamic balanced share ``W_i`` is computed, its
    entropy ``H_i`` measured (Eq. 3), and the share rescaled by Eq. 7
    against the running average objective entropy ``H_i^p``:

        W_i^p = W_i * (H_p * g(H_p)) / (H_i * g(H_i)),
        g(H)  = 1 - Z(H) + beta * Z(H)

    where ``beta = BW_rand / BW_seq`` of the dense-operand device.  A
    high-entropy (scattered) candidate workload therefore shrinks —
    its thread would otherwise be the straggler — and the freed work
    flows to later, lower-entropy workloads.

    Args:
        beta: random/sequential read-bandwidth ratio of the device serving
            the dense matrix (PM in heterogeneous mode).
        rescale_floor / rescale_ceiling: clamp on the Eq. 7 ratio to keep
            the online scheme robust on degenerate matrices.
    """

    name = "EaTA"
    overhead_ops_per_row = 2.0

    def __init__(
        self,
        beta: float = 0.41,
        row_overhead_nnz: float = 2.0,
        rescale_floor: float = 0.25,
        rescale_ceiling: float = 4.0,
    ) -> None:
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        if row_overhead_nnz < 0:
            raise ValueError(
                f"row_overhead_nnz must be >= 0, got {row_overhead_nnz}"
            )
        if not 0.0 < rescale_floor <= 1.0 <= rescale_ceiling:
            raise ValueError(
                "need rescale_floor in (0, 1] and rescale_ceiling >= 1,"
                f" got {rescale_floor}, {rescale_ceiling}"
            )
        self.beta = beta
        self.row_overhead_nnz = row_overhead_nnz
        self.rescale_floor = rescale_floor
        self.rescale_ceiling = rescale_ceiling

    def _g(self, z: float) -> float:
        """Eq. 5's bandwidth-degradation factor 1 - Z + beta*Z."""
        return 1.0 - z + self.beta * z

    def _time_proxy(self, ctx: AllocatorContext, row_start: int, row_end: int) -> float:
        """H * g(Z(H)) — the Eq. 7 denominator for a row range."""
        h = ctx.entropy(row_start, row_end)
        return h * self._g(min(h / ctx.log_v, 1.0))

    def allocate(
        self, matrix: CSDBMatrix, n_threads: int
    ) -> list[WorkloadPartition]:
        """Split rows so the Eq. 4/5 *predicted times* equalize.

        The paper calibrates Eq. 4's constant ``K`` on hardware and then
        rescales workloads online via Eq. 7; without hardware we equalize
        the same time model directly.  Each row of degree ``deg`` in a
        nominal workload ``W_nom = total/#threads`` sits in a window of
        normalized entropy ``z = log(W_nom/deg)/log|V|``, so its predicted
        cost is ``deg / g(z)`` (Eq. 5 bandwidth degradation) plus a
        constant per-row term (read_index).  Prefix sums of that proxy
        yield equal-time boundaries in O(|V|).
        """
        self._check(n_threads)
        ctx = AllocatorContext(matrix)
        if n_threads == 1 or ctx.n_rows == 0:
            first = ctx.make_partition(0, 0, ctx.n_rows)
            rest = [
                ctx.make_partition(t, ctx.n_rows, ctx.n_rows)
                for t in range(1, n_threads)
            ]
            return [first, *rest]
        degrees = matrix.row_degrees().astype(np.float64)
        w_nominal = max(ctx.total_nnz / n_threads, 1.0)
        with np.errstate(divide="ignore"):
            z = np.log(np.maximum(w_nominal / np.maximum(degrees, 1.0), 1.0))
        z = np.minimum(z / ctx.log_v, 1.0)
        g = 1.0 - z + self.beta * z
        proxy = degrees / g + self.row_overhead_nnz
        partitions = self._split_by_proxy(ctx, proxy, n_threads)
        # Feedback refinement: re-weight each row by its partition's
        # *measured* entropy (the per-row estimate above uses a nominal
        # window), then re-split.  Two sweeps suffice in practice.
        for _ in range(2):
            rates = np.ones(ctx.n_rows)
            for p in partitions:
                if p.n_rows > 0:
                    rates[p.row_start : p.row_end] = 1.0 / self._g(p.z_entropy)
            refined = degrees * rates + self.row_overhead_nnz
            partitions = self._split_by_proxy(ctx, refined, n_threads)
        return partitions

    def _split_by_proxy(
        self,
        ctx: AllocatorContext,
        proxy: np.ndarray,
        n_threads: int,
    ) -> list[WorkloadPartition]:
        """Equal-quantile split of a per-row cost proxy."""
        proxy_prefix = np.concatenate([[0.0], np.cumsum(proxy)])
        targets = np.linspace(0.0, proxy_prefix[-1], n_threads + 1)
        partitions: list[WorkloadPartition] = []
        row = 0
        for t in range(n_threads):
            if t == n_threads - 1:
                end = ctx.n_rows
            else:
                end = int(
                    np.searchsorted(proxy_prefix, targets[t + 1], side="left")
                )
                end = min(max(end, row), ctx.n_rows)
            partitions.append(ctx.make_partition(t, row, end))
            row = end
        return partitions

    def allocate_algorithm2(
        self, matrix: CSDBMatrix, n_threads: int
    ) -> list[WorkloadPartition]:
        """Literal Algorithm 2: online Eq. 7 rescaling of dynamic shares.

        Kept for fidelity and ablation; :meth:`allocate` (the prefix-sum
        equalizer of the same time model) is the production path.
        """
        self._check(n_threads)
        ctx = AllocatorContext(matrix)
        if n_threads == 1:
            return [ctx.make_partition(0, 0, ctx.n_rows)]

        # Initial objective entropy H_i^p: the average entropy of the
        # plain equal-workload split (Algorithm 2, line 2).
        targets = np.linspace(0, ctx.total_nnz, n_threads + 1)
        split_rows = np.searchsorted(ctx.nnz_prefix, targets, side="left")
        split_rows[0], split_rows[-1] = 0, ctx.n_rows
        initial_entropies = [
            ctx.entropy(int(split_rows[t]), int(split_rows[t + 1]))
            for t in range(n_threads)
            if split_rows[t + 1] > split_rows[t]
        ]
        h_objective = float(np.mean(initial_entropies)) if initial_entropies else 0.0

        partitions: list[WorkloadPartition] = []
        allocated_h_sum = 0.0
        row = 0
        for t in range(n_threads):
            remaining_threads = n_threads - t
            if t == n_threads - 1 or row >= ctx.n_rows:
                partitions.append(ctx.make_partition(t, row, ctx.n_rows))
                row = ctx.n_rows
                continue
            remaining_w = ctx.total_nnz - ctx.nnz_prefix[row]
            w_i = remaining_w / remaining_threads
            # Candidate balanced workload and its entropy (lines 4-5).
            candidate_end = ctx.row_at_workload(w_i, row)
            candidate_proxy = self._time_proxy(ctx, row, candidate_end)
            objective_proxy = h_objective * self._g(
                min(h_objective / ctx.log_v, 1.0)
            )
            # Eq. 7 rescaling (line 6), clamped for robustness.
            if candidate_proxy > 0.0 and objective_proxy > 0.0:
                ratio = objective_proxy / candidate_proxy
            else:
                ratio = 1.0
            ratio = min(max(ratio, self.rescale_floor), self.rescale_ceiling)
            w_p = max(w_i * ratio, 1.0)
            end = ctx.row_at_workload(w_p, row)
            # Never starve the remaining threads of rows.
            max_end = ctx.n_rows - (remaining_threads - 1)
            end = min(end, max(max_end, row + 1))
            partition = ctx.make_partition(t, row, end)
            partitions.append(partition)
            # Update the running objective (lines 9-12).
            allocated_h_sum += partition.entropy
            h_objective = allocated_h_sum / (t + 1)
            row = end
        return partitions


def make_allocator(scheme: object, beta: float = 0.41) -> ThreadAllocator:
    """Factory mapping an :class:`AllocationScheme` to an allocator."""
    from repro.core.config import AllocationScheme

    scheme = AllocationScheme(scheme)
    if scheme is AllocationScheme.ROUND_ROBIN:
        return RoundRobinAllocator()
    if scheme is AllocationScheme.NATURAL_ROUND_ROBIN:
        return NaturalOrderRoundRobinAllocator()
    if scheme is AllocationScheme.WORKLOAD_BALANCED:
        return WorkloadBalancedAllocator()
    return EntropyAwareAllocator(beta=beta)
