"""WoFP — the workload feature-aware prefetcher (§III-C).

For each thread's allocated workload, WoFP picks *which rows of the dense
matrix B* to pin in DRAM so that the scattered ``get_dense_nnz`` accesses
of Algorithm 1 hit fast memory instead of PM:

- **frequency-based** prefetcher (dense workloads,
  ``W_i / Rows_i >= |V| * eta``): counts column-index occurrences within
  the workload in a back-end thread and keeps the top-M most frequent in
  a key-value map — dynamic, more precise, higher maintenance cost;
- **degree-based** prefetcher (the common sparse case): statically pins
  the rows of B whose vertices have the highest in-degree — a higher
  in-degree means the row index recurs with higher probability, and
  counting in-degrees is nearly free.

``M = W_i * sigma`` bounds each workload's prefetcher (the paper's σ).
The prefetcher never changes the workload split decided by EaTA, only the
memory tier its dense reads are served from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.eata import WorkloadPartition
from repro.formats.csdb import CSDBMatrix
from repro.obs.metrics import MetricsRegistry

#: Histogram buckets for per-workload hit fractions (0..1 in 0.1 steps).
HIT_FRACTION_BUCKETS = tuple(i / 10.0 for i in range(1, 11))


def record_prefetch_metrics(
    plan: "PrefetchPlan | DisabledPrefetchPlan",
    partition: WorkloadPartition,
    dense_cols: int,
    metrics: MetricsRegistry,
) -> None:
    """Flow one workload's WoFP decisions into a metrics registry.

    Hits are the dense accesses served from the DRAM-pinned top-M set;
    misses pay the PM gather.  ``wofp.pinned_bytes`` is the DRAM the
    top-M structures reserve — what an over-large σ inflates (Fig. 19c).
    """
    w = partition.nnz_count
    hit_nnz = plan.hit_fraction * w
    metrics.counter("wofp.plans", kind=plan.kind).inc()
    metrics.counter("wofp.hit_nnz").inc(hit_nnz)
    metrics.counter("wofp.miss_nnz").inc(w - hit_nnz)
    metrics.counter("wofp.pinned_bytes").inc(plan.pinned_bytes(dense_cols))
    metrics.counter("wofp.maintenance_ops").inc(plan.maintenance_ops)
    if w > 0:
        metrics.histogram(
            "wofp.hit_fraction", buckets=HIT_FRACTION_BUCKETS
        ).observe(plan.hit_fraction)


@dataclass(frozen=True)
class PrefetchPlan:
    """Prefetch decisions for one workload.

    Attributes:
        kind: ``"frequency"`` or ``"degree"``.
        capacity: number of dense-matrix rows actually pinned in DRAM
            (at most the workload's distinct columns).
        reserved_entries: M = W_i * sigma — the size of the top-M
            structure the prefetcher allocates and maintains.  This is
            what an over-large sigma inflates (Fig. 19c's right branch).
        hot_columns: the pinned column ids (rows of B).
        hit_fraction: fraction of the workload's dense accesses served
            from the pinned set.
        maintenance_ops: bookkeeping operations (hash updates/evictions)
            charged as prefetcher overhead.
    """

    kind: str
    capacity: int
    reserved_entries: int
    hot_columns: np.ndarray
    hit_fraction: float
    maintenance_ops: float

    def pinned_bytes(self, dense_cols: int, itemsize: int = 8) -> int:
        """DRAM bytes reserved for the top-M structure."""
        return int(self.reserved_entries * dense_cols * itemsize)


@dataclass(frozen=True)
class DisabledPrefetchPlan:
    """Sentinel plan used when WoFP is turned off."""

    kind: str = "disabled"
    capacity: int = 0
    hit_fraction: float = 0.0
    maintenance_ops: float = 0.0

    def pinned_bytes(self, dense_cols: int, itemsize: int = 8) -> int:
        """No DRAM is pinned when the prefetcher is disabled."""
        return 0


class WorkloadPrefetcher:
    """Builds per-workload :class:`PrefetchPlan` objects.

    Args:
        eta: prefetcher-type threshold η — frequency-based when
            ``W_i / Rows_i >= |V| * eta``.
        sigma: prefetch-size parameter σ — capacity ``M = W_i * sigma``.
        frequency_ops_per_access: hash-map maintenance cost of the dynamic
            prefetcher, per workload access.
        degree_ops_per_entry: cost of statically populating one top-M
            entry from the in-degree ranking.
    """

    def __init__(
        self,
        eta: float = 0.01,
        sigma: float = 0.05,
        frequency_ops_per_access: float = 2.0,
        degree_ops_per_entry: float = 1.0,
    ) -> None:
        if eta <= 0:
            raise ValueError(f"eta must be > 0, got {eta}")
        if not 0.0 <= sigma <= 1.0:
            raise ValueError(f"sigma must be in [0, 1], got {sigma}")
        self.eta = eta
        self.sigma = sigma
        self.frequency_ops_per_access = frequency_ops_per_access
        self.degree_ops_per_entry = degree_ops_per_entry

    def selects_frequency(
        self, matrix: CSDBMatrix, partition: WorkloadPartition
    ) -> bool:
        """The paper's type-selection test ``W_i / Rows >= |V| * eta``."""
        rows = max(partition.n_rows, 1)
        return partition.nnz_count / rows >= matrix.n_cols * self.eta

    def plan(
        self,
        matrix: CSDBMatrix,
        partition: WorkloadPartition,
        col_degrees: np.ndarray | None = None,
    ) -> PrefetchPlan:
        """Build the prefetch plan for one workload.

        Args:
            matrix: the sparse operand A.
            partition: the thread's workload.
            col_degrees: precomputed global in-degrees (computed on demand
                if omitted; callers amortize it across partitions).
        """
        w = partition.nnz_count
        if w == 0:
            return PrefetchPlan(
                kind="degree",
                capacity=0,
                reserved_entries=0,
                hot_columns=np.empty(0, dtype=np.int64),
                hit_fraction=0.0,
                maintenance_ops=0.0,
            )
        reserved = max(int(w * self.sigma), 1)
        cols = matrix.col_list[partition.nnz_start : partition.nnz_end]
        distinct, counts = np.unique(cols, return_counts=True)
        capacity = min(reserved, len(distinct))
        if self.selects_frequency(matrix, partition):
            return self._frequency_plan(distinct, counts, capacity, reserved, w)
        if col_degrees is None:
            col_degrees = matrix.col_degrees()
        return self._degree_plan(
            distinct, counts, col_degrees, capacity, reserved, w
        )

    def _frequency_plan(
        self,
        distinct: np.ndarray,
        counts: np.ndarray,
        capacity: int,
        reserved: int,
        workload: int,
    ) -> PrefetchPlan:
        top = np.argsort(-counts, kind="stable")[:capacity]
        hot = distinct[top]
        hits = float(counts[top].sum())
        return PrefetchPlan(
            kind="frequency",
            capacity=capacity,
            reserved_entries=reserved,
            hot_columns=hot,
            hit_fraction=hits / workload,
            maintenance_ops=workload * self.frequency_ops_per_access
            + reserved * self.degree_ops_per_entry,
        )

    def _degree_plan(
        self,
        distinct: np.ndarray,
        counts: np.ndarray,
        col_degrees: np.ndarray,
        capacity: int,
        reserved: int,
        workload: int,
    ) -> PrefetchPlan:
        # Rank the workload's distinct columns by *global* in-degree: the
        # static proxy the paper uses when per-workload counting would not
        # pay for itself.
        top = np.argsort(-col_degrees[distinct], kind="stable")[:capacity]
        hot = distinct[top]
        hits = float(counts[top].sum())
        return PrefetchPlan(
            kind="degree",
            capacity=capacity,
            reserved_entries=reserved,
            hot_columns=hot,
            hit_fraction=hits / workload,
            maintenance_ops=reserved * self.degree_ops_per_entry,
        )
