"""Scaled synthetic analogues of the paper's Table I datasets.

The six evaluation graphs (soc-Pokec, soc-LiveJournal, Com-Orkut, Twitter,
Twitter-2010, Com-Friendster) range up to 3.61 B edges.  We cannot ship
those, so each is replaced by a deterministic Chung-Lu graph whose node
count, average degree and power-law skew match the original at a recorded
downscale factor.  The factor matters: the experiment harness scales the
simulated DRAM/PM capacities by the same amount so capacity effects
(OMeGa-DRAM and FusedMM failing on TW-2010/FR, ASL partitioning) are
preserved, and reported simulated times can be projected back to full
scale by multiplying by ``scale``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.convert import edges_to_csdb, edges_to_csr
from repro.formats.csdb import CSDBMatrix
from repro.formats.csr import CSRMatrix
from repro.graphs.powerlaw import chung_lu_edges
from repro.graphs.stats import GraphStats, graph_stats


@dataclass(frozen=True)
class PaperGraph:
    """Table I statistics of one original dataset."""

    name: str
    full_name: str
    n_nodes: int
    n_edges: int
    n_distinct_degrees: int
    default_scale: int
    gamma: float  # power-law exponent of the synthetic analogue


#: Table I of the paper, with each graph's default downscale factor.
#: Scales are chosen so every analogue fits comfortably in test memory
#: while keeping the billion-scale graphs clearly the largest workloads.
PAPER_GRAPHS: dict[str, PaperGraph] = {
    "PK": PaperGraph("PK", "soc-Pokec", 1_630_000, 44_600_000, 803, 512, 2.4),
    "LJ": PaperGraph("LJ", "soc-LiveJournal", 4_850_000, 85_700_000, 1_641, 512, 2.3),
    "OR": PaperGraph("OR", "Com-Orkut", 3_070_000, 234_470_000, 2_863, 512, 2.2),
    "TW": PaperGraph("TW", "Twitter", 11_320_000, 127_110_000, 5_373, 1_024, 2.1),
    "TW-2010": PaperGraph(
        "TW-2010", "Twitter-2010", 41_650_000, 2_410_000_000, 15_760, 4_096, 2.05
    ),
    "FR": PaperGraph(
        "FR", "Com-Friendster", 65_610_000, 3_610_000_000, 3_148, 8_192, 2.3
    ),
}

#: Table I row order.
DATASET_NAMES: tuple[str, ...] = ("PK", "LJ", "OR", "TW", "TW-2010", "FR")


@dataclass
class Dataset:
    """A loaded (scaled) evaluation graph.

    Attributes:
        name: short Table I name (``"PK"`` .. ``"FR"``).
        edges: (m, 2) undirected edge array of the scaled analogue.
        n_nodes: node count of the scaled analogue.
        scale: downscale factor versus the original graph; multiply
            simulated times by this to project to full scale, and divide
            simulated device capacities by it to preserve memory pressure.
        paper: the original graph's Table I statistics.
    """

    name: str
    edges: np.ndarray
    n_nodes: int
    scale: int
    paper: PaperGraph
    _csdb: CSDBMatrix | None = field(default=None, repr=False)
    _csr: CSRMatrix | None = field(default=None, repr=False)

    @property
    def n_edges(self) -> int:
        """Undirected edge count of the scaled analogue."""
        return int(len(self.edges))

    def adjacency_csdb(self) -> CSDBMatrix:
        """Adjacency matrix in CSDB format (cached)."""
        if self._csdb is None:
            self._csdb = edges_to_csdb(self.edges, self.n_nodes)
        return self._csdb

    def adjacency_csr(self) -> CSRMatrix:
        """Adjacency matrix in CSR format (cached)."""
        if self._csr is None:
            self._csr = edges_to_csr(self.edges, self.n_nodes)
        return self._csr

    def stats(self) -> GraphStats:
        """Summary statistics of the scaled analogue."""
        return graph_stats(self.edges, self.n_nodes)

    def full_scale_nodes(self) -> int:
        """|V| of the original graph."""
        return self.paper.n_nodes

    def full_scale_edges(self) -> int:
        """|E| of the original graph."""
        return self.paper.n_edges


def load_dataset(
    name: str, scale: int | None = None, seed: int | None = None
) -> Dataset:
    """Load (generate) the scaled analogue of a Table I graph.

    Args:
        name: one of :data:`DATASET_NAMES` (case-insensitive).
        scale: downscale factor; defaults to the per-graph value chosen in
            :data:`PAPER_GRAPHS`.
        seed: RNG seed; defaults to a per-graph constant so analogues are
            stable across runs.
    """
    key = name.upper()
    if key not in PAPER_GRAPHS:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
        )
    paper = PAPER_GRAPHS[key]
    if scale is None:
        scale = paper.default_scale
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    n_nodes = max(paper.n_nodes // scale, 16)
    n_edges = max(paper.n_edges // scale, 16)
    if seed is None:
        seed = sum(ord(ch) for ch in key)
    edges = chung_lu_edges(n_nodes, n_edges, gamma=paper.gamma, seed=seed)
    return Dataset(name=key, edges=edges, n_nodes=n_nodes, scale=scale, paper=paper)


def dataset_table(
    names: tuple[str, ...] = DATASET_NAMES, scale: int | None = None
) -> list[dict[str, object]]:
    """Rows of Table I: paper statistics next to the scaled analogues."""
    rows: list[dict[str, object]] = []
    for name in names:
        dataset = load_dataset(name, scale=scale)
        stats = dataset.stats()
        rows.append(
            {
                "graph": name,
                "paper_nodes": dataset.paper.n_nodes,
                "paper_edges": dataset.paper.n_edges,
                "paper_degrees": dataset.paper.n_distinct_degrees,
                "scale": dataset.scale,
                "nodes": stats.n_nodes,
                "edges": stats.n_edges,
                "degrees": stats.n_distinct_degrees,
                "mean_degree": stats.mean_degree,
                "gini": stats.gini,
            }
        )
    return rows
