"""Edge-list I/O.

The paper's "graph reading procedure" (timed in Fig. 19(a)) parses an
edge-list file and builds the in-memory format (CSR for the baselines,
CSDB for OMeGa).  We support the usual whitespace-separated text format
with ``#`` comments (the SNAP convention used by all Table I datasets).
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np


class EdgeListError(ValueError):
    """A text edge list is malformed (bad tokens, shape, or node ids).

    Subclasses :class:`ValueError` so callers that catch the generic
    error keep working; the typed error carries the offending path so
    ingestion pipelines can report *which* input failed.
    """

    def __init__(self, path: str | Path, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"{path}: {reason}")


def save_edge_list(path: str | Path, edges: np.ndarray, header: str = "") -> None:
    """Write an (m, 2) edge array as a SNAP-style text edge list."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must be (m, 2), got {edges.shape}")
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        np.savetxt(handle, edges, fmt="%d", delimiter="\t")


def load_edge_list(path: str | Path) -> tuple[np.ndarray, int]:
    """Parse a SNAP-style edge list.

    Lines starting with ``#`` are comments; remaining lines are
    whitespace-separated node-id pairs.  Node ids may be arbitrary
    non-negative integers; they are compacted to ``[0, n)``.

    Returns:
        (edges, n_nodes): the (m, 2) compacted edge array and node count.

    Raises:
        EdgeListError: on non-integer tokens, ragged or short rows, or
            negative node ids.
    """
    path = Path(path)
    try:
        with warnings.catch_warnings():
            # Comment-only files legitimately parse to an empty array.
            warnings.simplefilter("ignore", UserWarning)
            raw = np.loadtxt(path, comments="#", dtype=np.int64, ndmin=2)
    except ValueError as exc:
        raise EdgeListError(path, f"unparseable edge list ({exc})") from exc
    if raw.size == 0:
        return np.empty((0, 2), dtype=np.int64), 0
    if raw.shape[1] < 2:
        raise EdgeListError(path, "expected at least two columns per line")
    edges = raw[:, :2]
    if edges.min() < 0:
        raise EdgeListError(
            path, f"negative node id {int(edges.min())}; ids must be >= 0"
        )
    node_ids, compact = np.unique(edges, return_inverse=True)
    return compact.reshape(edges.shape).astype(np.int64), int(len(node_ids))
