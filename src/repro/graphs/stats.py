"""Graph statistics: degree distributions, skew and entropy measures."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of an undirected graph.

    Attributes:
        n_nodes: |V|.
        n_edges: |E| (undirected edge count).
        n_distinct_degrees: number of distinct node degrees — the
            "#degrees" column of Table I and the index size of CSDB.
        max_degree: largest node degree.
        mean_degree: average node degree (2|E| / |V|).
        degree_entropy: Shannon entropy of the nnz-mass distribution over
            rows (Eq. 3 applied to the whole adjacency matrix), in nats.
        normalized_entropy: the paper's Z(H) = H / log|V| in [0, 1].
        gini: Gini coefficient of the degree distribution (skew measure).
    """

    n_nodes: int
    n_edges: int
    n_distinct_degrees: int
    max_degree: int
    mean_degree: float
    degree_entropy: float
    normalized_entropy: float
    gini: float


def degrees_from_edges(edges: np.ndarray, n_nodes: int) -> np.ndarray:
    """Per-node degree of an undirected edge list."""
    edges = np.asarray(edges, dtype=np.int64)
    if len(edges) == 0:
        return np.zeros(n_nodes, dtype=np.int64)
    counts = np.bincount(edges.ravel(), minlength=n_nodes)
    return counts.astype(np.int64)


def degree_histogram(degrees: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(distinct degrees ascending, node counts) of a degree sequence."""
    return np.unique(np.asarray(degrees, dtype=np.int64), return_counts=True)


def shannon_entropy(masses: np.ndarray) -> float:
    """Shannon entropy (nats) of a non-negative mass vector (Eq. 3 form).

    ``H = sum_j -(m_j / M) log(m_j / M)``; zero-mass entries contribute 0.
    """
    masses = np.asarray(masses, dtype=np.float64)
    if np.any(masses < 0):
        raise ValueError("masses must be non-negative")
    total = masses.sum()
    if total == 0:
        return 0.0
    p = masses[masses > 0] / total
    return float(-(p * np.log(p)).sum())


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative value distribution."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    n = len(values)
    if n == 0 or values.sum() == 0:
        return 0.0
    index = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (index * values).sum() / (n * values.sum())) - (n + 1) / n)


def graph_stats(edges: np.ndarray, n_nodes: int) -> GraphStats:
    """Compute the full :class:`GraphStats` summary of an edge list."""
    degrees = degrees_from_edges(edges, n_nodes)
    entropy = shannon_entropy(degrees)
    log_v = np.log(n_nodes) if n_nodes > 1 else 1.0
    return GraphStats(
        n_nodes=int(n_nodes),
        n_edges=int(len(edges)),
        n_distinct_degrees=int(len(np.unique(degrees))),
        max_degree=int(degrees.max()) if n_nodes else 0,
        mean_degree=float(degrees.mean()) if n_nodes else 0.0,
        degree_entropy=entropy,
        normalized_entropy=float(entropy / log_v),
        gini=gini_coefficient(degrees),
    )
