"""Graph generation, datasets, I/O and statistics.

The paper evaluates on six public graphs (Table I) up to 3.6 B edges plus
R-MAT synthetics.  We have no network access and no 768 GiB of PM, so
:mod:`repro.graphs.datasets` provides deterministic, degree-skew-matched
*scaled analogues* of each Table I graph (the ``scale`` field records the
downscale factor; simulated device capacities are scaled by the same
factor so capacity pressure — e.g. the DRAM OOMs on TW-2010/FR — is
preserved).  :mod:`repro.graphs.rmat` is the R-MAT generator used for the
scalability sweep of Fig. 17(b).
"""

from repro.graphs.datasets import (
    DATASET_NAMES,
    Dataset,
    dataset_table,
    load_dataset,
)
from repro.graphs.io import EdgeListError, load_edge_list, save_edge_list
from repro.graphs.partition import (
    balanced_edge_partition,
    edge_cut_fraction,
    greedy_community_partition,
    hash_partition,
    partition_load_balance,
    range_partition,
)
from repro.graphs.powerlaw import chung_lu_edges, planted_partition_edges
from repro.graphs.rmat import rmat_edges
from repro.graphs.stats import GraphStats, degree_histogram, graph_stats

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "EdgeListError",
    "GraphStats",
    "balanced_edge_partition",
    "edge_cut_fraction",
    "greedy_community_partition",
    "hash_partition",
    "partition_load_balance",
    "range_partition",
    "chung_lu_edges",
    "dataset_table",
    "degree_histogram",
    "graph_stats",
    "load_dataset",
    "load_edge_list",
    "planted_partition_edges",
    "rmat_edges",
    "save_edge_list",
]
