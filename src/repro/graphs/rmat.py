"""R-MAT recursive graph generator (Chakrabarti, Zhan, Faloutsos 2004).

Used by the paper's scalability study (Fig. 17(b)) to sweep graph sizes
from 1e4 to 1e9 nodes while controlling density and skew.  Quadrant
probabilities ``(a, b, c, d)`` default to the standard Graph500-style
(0.57, 0.19, 0.19, 0.05), giving a strongly skewed degree distribution.
"""

from __future__ import annotations

import numpy as np


def rmat_edges(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    deduplicate: bool = True,
) -> np.ndarray:
    """Generate an R-MAT graph with ``2**scale`` nodes.

    Args:
        scale: log2 of the node count.
        edge_factor: target edges per node (before deduplication).
        a, b, c: quadrant probabilities; ``d = 1 - a - b - c``.
        seed: RNG seed — output is fully deterministic.
        deduplicate: drop self-loops and duplicate undirected edges.

    Returns:
        (m, 2) int64 edge array over nodes ``[0, 2**scale)``.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise ValueError(f"invalid quadrant probabilities ({a}, {b}, {c}, {d})")
    n_nodes = 1 << scale
    n_edges = int(edge_factor * n_nodes)
    rng = np.random.default_rng(seed)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    # Vectorized bit-by-bit recursion: at every level each edge picks a
    # quadrant, setting one bit of the source and destination ids.
    for _ in range(scale):
        r = rng.random(n_edges)
        right = (r >= a) & (r < a + b) | (r >= a + b + c)  # quadrants b, d
        bottom = r >= a + b  # quadrants c, d
        src = (src << 1) | bottom.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    if not deduplicate:
        return np.stack([src, dst], axis=1)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    key = lo * np.int64(n_nodes) + hi
    _, unique_idx = np.unique(key, return_index=True)
    unique_idx.sort()
    return np.stack([lo[unique_idx], hi[unique_idx]], axis=1)
