"""Power-law (Chung-Lu) graph generation.

Real-world graphs follow heavily skewed degree distributions; CSDB, EaTA
and WoFP all exploit that skew, so the synthetic stand-ins must match its
*shape*.  The Chung-Lu model draws each edge endpoint proportionally to a
per-node weight ``w_i ~ (i + i0)^(-1/(gamma-1))``, yielding an expected
degree sequence that is power-law with exponent ``gamma``.
"""

from __future__ import annotations

import numpy as np


def powerlaw_weights(
    n_nodes: int, gamma: float = 2.3, min_weight: float = 1.0
) -> np.ndarray:
    """Expected-degree weights of a power-law with exponent ``gamma``."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if gamma <= 1.0:
        raise ValueError(f"gamma must be > 1, got {gamma}")
    ranks = np.arange(1, n_nodes + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (gamma - 1.0))
    return weights / weights.min() * min_weight


def chung_lu_edges(
    n_nodes: int,
    n_edges: int,
    gamma: float = 2.3,
    seed: int = 0,
    oversample: float = 1.3,
) -> np.ndarray:
    """Sample a simple undirected Chung-Lu graph as an (m, 2) edge array.

    Endpoints are drawn independently from the weight distribution;
    self-loops and duplicate edges are dropped, so ``oversample`` extra
    draws compensate.  The result is deterministic in ``seed`` and has at
    most ``n_edges`` edges (typically within a few percent).
    """
    if n_edges < 0:
        raise ValueError(f"n_edges must be >= 0, got {n_edges}")
    if n_edges == 0:
        return np.empty((0, 2), dtype=np.int64)
    rng = np.random.default_rng(seed)
    weights = powerlaw_weights(n_nodes, gamma)
    prob = weights / weights.sum()
    draw = int(n_edges * oversample) + 16
    src = rng.choice(n_nodes, size=draw, p=prob)
    dst = rng.choice(n_nodes, size=draw, p=prob)
    edges = _dedupe_edges(src, dst, n_edges)
    return _shuffle_labels(edges, n_nodes, rng)


def planted_partition_edges(
    n_nodes: int,
    n_edges: int,
    n_communities: int = 8,
    p_in: float = 0.8,
    gamma: float = 2.3,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Chung-Lu graph with planted communities, for quality evaluation.

    A fraction ``p_in`` of edges is rewired to stay within a node's
    community, giving embeddings a recoverable cluster signal (used by the
    node-classification evaluation in :mod:`repro.eval`).

    Returns:
        (edges, labels): the (m, 2) edge array and per-node community ids.
    """
    if not 0.0 <= p_in <= 1.0:
        raise ValueError(f"p_in must be in [0, 1], got {p_in}")
    if n_communities < 1:
        raise ValueError(f"n_communities must be >= 1, got {n_communities}")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_communities, size=n_nodes)
    weights = powerlaw_weights(n_nodes, gamma)
    prob = weights / weights.sum()
    draw = int(n_edges * 1.4) + 16
    src = rng.choice(n_nodes, size=draw, p=prob)
    dst = rng.choice(n_nodes, size=draw, p=prob)
    # Rewire intra-community edges: for a p_in share of draws, resample the
    # destination from the source's community (weight-proportionally).
    intra = rng.random(draw) < p_in
    members: dict[int, np.ndarray] = {
        c: np.flatnonzero(labels == c) for c in range(n_communities)
    }
    for community, nodes in members.items():
        if len(nodes) == 0:
            continue
        mask = intra & (labels[src] == community)
        count = int(mask.sum())
        if count == 0:
            continue
        community_prob = prob[nodes] / prob[nodes].sum()
        dst[mask] = rng.choice(nodes, size=count, p=community_prob)
    edges = _dedupe_edges(src, dst, n_edges)
    permutation = rng.permutation(n_nodes)
    relabeled_labels = np.empty(n_nodes, dtype=labels.dtype)
    relabeled_labels[permutation] = labels
    if len(edges):
        relabeled = permutation[edges]
        lo = np.minimum(relabeled[:, 0], relabeled[:, 1])
        hi = np.maximum(relabeled[:, 0], relabeled[:, 1])
        edges = np.stack([lo, hi], axis=1)
    return edges, relabeled_labels


def _shuffle_labels(
    edges: np.ndarray, n_nodes: int, rng: np.random.Generator
) -> np.ndarray:
    """Randomly relabel node ids.

    The Chung-Lu sampler assigns the heaviest weights to the lowest ids;
    real-world graph files carry no such ordering, and downstream
    scheduling behaviour (natural-order round-robin) depends on it, so
    analogues are relabeled uniformly at random.
    """
    if len(edges) == 0:
        return edges
    permutation = rng.permutation(n_nodes)
    relabeled = permutation[edges]
    lo = np.minimum(relabeled[:, 0], relabeled[:, 1])
    hi = np.maximum(relabeled[:, 0], relabeled[:, 1])
    return np.stack([lo, hi], axis=1)


def _dedupe_edges(src: np.ndarray, dst: np.ndarray, n_edges: int) -> np.ndarray:
    """Canonicalize, drop self-loops/duplicates, trim to ``n_edges``."""
    lo = np.minimum(src, dst).astype(np.int64)
    hi = np.maximum(src, dst).astype(np.int64)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    key = lo * np.int64(2**32) + hi
    _, unique_idx = np.unique(key, return_index=True)
    unique_idx.sort()
    unique_idx = unique_idx[:n_edges]
    return np.stack([lo[unique_idx], hi[unique_idx]], axis=1)
