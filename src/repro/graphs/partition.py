"""Graph partitioning: the substrate under NaDP and the distributed models.

Three partitioners, all returning a per-node part assignment:

- :func:`hash_partition` — random (hash) assignment, DistDGL's default;
- :func:`range_partition` — contiguous ranges of node ids;
- :func:`balanced_edge_partition` — contiguous ranges balanced by
  *degree mass* instead of node count (what NaDP's socket split and
  DistGER's workload balancing use).

Plus the quality metrics that drive the cost models:
:func:`edge_cut_fraction` (share of edges crossing parts — the remote
traffic of a distributed system) and :func:`partition_load_balance`.
"""

from __future__ import annotations

import numpy as np


def _check_parts(n_parts: int) -> None:
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")


def hash_partition(n_nodes: int, n_parts: int, seed: int = 0) -> np.ndarray:
    """Uniform random assignment (hash partitioning)."""
    _check_parts(n_parts)
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_parts, size=n_nodes).astype(np.int64)


def range_partition(n_nodes: int, n_parts: int) -> np.ndarray:
    """Contiguous equal-count ranges of node ids."""
    _check_parts(n_parts)
    boundaries = np.linspace(0, n_nodes, n_parts + 1).astype(np.int64)
    assignment = np.empty(n_nodes, dtype=np.int64)
    for part in range(n_parts):
        assignment[boundaries[part] : boundaries[part + 1]] = part
    return assignment


def balanced_edge_partition(
    degrees: np.ndarray, n_parts: int
) -> np.ndarray:
    """Contiguous ranges balanced by degree mass.

    Splits node ids into ``n_parts`` contiguous ranges whose total degree
    is as equal as possible — the split NaDP applies to the sparse matrix
    across sockets.
    """
    _check_parts(n_parts)
    degrees = np.asarray(degrees, dtype=np.int64)
    n_nodes = len(degrees)
    prefix = np.concatenate([[0], np.cumsum(degrees)])
    targets = np.linspace(0, prefix[-1], n_parts + 1)
    assignment = np.empty(n_nodes, dtype=np.int64)
    start = 0
    for part in range(n_parts):
        if part == n_parts - 1:
            end = n_nodes
        else:
            end = int(np.searchsorted(prefix, targets[part + 1], side="left"))
            end = min(max(end, start), n_nodes)
        assignment[start:end] = part
        start = end
    return assignment


def greedy_community_partition(
    edges: np.ndarray, n_nodes: int, n_parts: int, seed: int = 0
) -> np.ndarray:
    """Linear deterministic greedy (LDG-style) streaming partitioning.

    Streams nodes in degree order, assigning each to the part holding
    most of its already-placed neighbors, discounted by a load penalty —
    the classic low-cut heuristic used by locality-aware distributed
    systems (DistGER's partitioner family).
    """
    _check_parts(n_parts)
    edges = np.asarray(edges, dtype=np.int64)
    adjacency: list[list[int]] = [[] for _ in range(n_nodes)]
    for u, v in edges:
        adjacency[int(u)].append(int(v))
        adjacency[int(v)].append(int(u))
    capacity = max(1.0, n_nodes / n_parts)
    loads = np.zeros(n_parts)
    assignment = np.full(n_nodes, -1, dtype=np.int64)
    rng = np.random.default_rng(seed)
    degrees = np.array([len(a) for a in adjacency])
    order = np.argsort(-degrees, kind="stable")
    for node in order:
        neighbor_counts = np.zeros(n_parts)
        for neighbor in adjacency[int(node)]:
            part = assignment[neighbor]
            if part >= 0:
                neighbor_counts[part] += 1
        scores = neighbor_counts * (1.0 - loads / capacity)
        best = scores.max()
        candidates = np.flatnonzero(scores >= best - 1e-12)
        choice = int(candidates[rng.integers(len(candidates))])
        assignment[int(node)] = choice
        loads[choice] += 1
    return assignment


def edge_cut_fraction(edges: np.ndarray, assignment: np.ndarray) -> float:
    """Fraction of edges whose endpoints land in different parts."""
    edges = np.asarray(edges, dtype=np.int64)
    if len(edges) == 0:
        return 0.0
    assignment = np.asarray(assignment, dtype=np.int64)
    return float(
        np.mean(assignment[edges[:, 0]] != assignment[edges[:, 1]])
    )


def partition_load_balance(
    assignment: np.ndarray, weights: np.ndarray | None = None
) -> float:
    """Max part load over mean part load (1.0 is perfect)."""
    assignment = np.asarray(assignment, dtype=np.int64)
    n_parts = int(assignment.max()) + 1 if len(assignment) else 1
    if weights is None:
        loads = np.bincount(assignment, minlength=n_parts).astype(float)
    else:
        loads = np.bincount(
            assignment, weights=np.asarray(weights, dtype=float),
            minlength=n_parts,
        )
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)
