"""Node classification with a from-scratch logistic regression.

One-vs-rest logistic regression trained by full-batch gradient descent
with L2 regularization — no sklearn dependency.  Used to verify that
embeddings recover planted community structure.
"""

from __future__ import annotations

import numpy as np


class LogisticRegressionOVR:
    """One-vs-rest multinomial classifier on dense features.

    Args:
        learning_rate: gradient step size.
        n_iterations: full-batch gradient steps per class.
        l2: ridge penalty strength.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 200,
        l2: float = 1e-4,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.weights: np.ndarray | None = None  # (n_classes, d + 1)
        self.classes: np.ndarray | None = None

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        ex = np.exp(x[~positive])
        out[~positive] = ex / (1.0 + ex)
        return out

    @staticmethod
    def _with_bias(features: np.ndarray) -> np.ndarray:
        return np.hstack([features, np.ones((len(features), 1))])

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegressionOVR":
        """Train one binary classifier per class."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if len(features) != len(labels):
            raise ValueError(
                f"features ({len(features)}) and labels ({len(labels)})"
                " lengths differ"
            )
        x = self._with_bias(features)
        self.classes = np.unique(labels)
        n_samples, n_features = x.shape
        self.weights = np.zeros((len(self.classes), n_features))
        for class_index, cls in enumerate(self.classes):
            target = (labels == cls).astype(np.float64)
            w = np.zeros(n_features)
            for _ in range(self.n_iterations):
                pred = self._sigmoid(x @ w)
                grad = x.T @ (pred - target) / n_samples + self.l2 * w
                w -= self.learning_rate * grad
            self.weights[class_index] = w
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict the most confident class per sample."""
        if self.weights is None or self.classes is None:
            raise RuntimeError("classifier is not fitted")
        x = self._with_bias(np.asarray(features, dtype=np.float64))
        scores = x @ self.weights.T
        return self.classes[np.argmax(scores, axis=1)]

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correctly classified samples."""
        return float(np.mean(self.predict(features) == np.asarray(labels)))


def node_classification_accuracy(
    embedding: np.ndarray,
    labels: np.ndarray,
    train_fraction: float = 0.5,
    seed: int = 0,
) -> float:
    """Train/test accuracy probe of an embedding's label signal."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    embedding = np.asarray(embedding, dtype=np.float64)
    labels = np.asarray(labels)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(labels))
    n_train = max(1, int(len(labels) * train_fraction))
    train_idx, test_idx = order[:n_train], order[n_train:]
    model = LogisticRegressionOVR().fit(embedding[train_idx], labels[train_idx])
    return model.accuracy(embedding[test_idx], labels[test_idx])
