"""Embedding-quality evaluation.

OMeGa claims to preserve ProNE's representation quality (its
optimizations are scheduling/placement only).  This subpackage provides
the two standard downstream probes:

- :mod:`repro.eval.linkpred` — link prediction AUC by edge ranking;
- :mod:`repro.eval.nodeclass` — node classification with a from-scratch
  one-vs-rest logistic regression.
"""

from repro.eval.clustering import (
    clustering_nmi,
    kmeans,
    normalized_mutual_information,
)
from repro.eval.linkpred import link_prediction_auc, score_edges
from repro.eval.nodeclass import LogisticRegressionOVR, node_classification_accuracy
from repro.eval.splits import sample_negative_edges, train_test_edge_split

__all__ = [
    "LogisticRegressionOVR",
    "clustering_nmi",
    "kmeans",
    "normalized_mutual_information",
    "link_prediction_auc",
    "node_classification_accuracy",
    "sample_negative_edges",
    "score_edges",
    "train_test_edge_split",
]
