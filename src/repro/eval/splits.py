"""Edge splits and negative sampling for link-prediction evaluation."""

from __future__ import annotations

import numpy as np


def train_test_edge_split(
    edges: np.ndarray, test_fraction: float = 0.2, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Randomly split an edge list into train/test sets.

    Returns (train_edges, test_edges); the split is deterministic in
    ``seed``.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(edges))
    n_test = max(1, int(len(edges) * test_fraction))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return edges[train_idx], edges[test_idx]


def sample_negative_edges(
    edges: np.ndarray, n_nodes: int, n_samples: int, seed: int = 0
) -> np.ndarray:
    """Sample node pairs that are *not* edges of the graph.

    Uses rejection sampling against a hash set of the true edges.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if n_nodes < 2:
        raise ValueError(f"need n_nodes >= 2, got {n_nodes}")
    existing = set()
    for u, v in edges:
        lo, hi = (int(u), int(v)) if u <= v else (int(v), int(u))
        existing.add((lo, hi))
    rng = np.random.default_rng(seed)
    negatives: list[tuple[int, int]] = []
    max_attempts = 50 * n_samples + 1000
    attempts = 0
    while len(negatives) < n_samples and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(n_nodes))
        v = int(rng.integers(n_nodes))
        if u == v:
            continue
        lo, hi = (u, v) if u < v else (v, u)
        if (lo, hi) in existing:
            continue
        existing.add((lo, hi))
        negatives.append((lo, hi))
    if len(negatives) < n_samples:
        raise RuntimeError(
            f"could only sample {len(negatives)} of {n_samples} negative"
            " edges; the graph may be too dense"
        )
    return np.asarray(negatives, dtype=np.int64)
