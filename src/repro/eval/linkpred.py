"""Link prediction by embedding dot-product ranking."""

from __future__ import annotations

import numpy as np


def score_edges(embedding: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Dot-product score of each (u, v) pair under an embedding."""
    embedding = np.asarray(embedding, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must be (m, 2), got {edges.shape}")
    return np.einsum(
        "ij,ij->i", embedding[edges[:, 0]], embedding[edges[:, 1]]
    )


def ranking_auc(
    positive_scores: np.ndarray, negative_scores: np.ndarray
) -> float:
    """AUC via the Mann-Whitney U statistic (tie-aware)."""
    pos = np.asarray(positive_scores, dtype=np.float64)
    neg = np.asarray(negative_scores, dtype=np.float64)
    if len(pos) == 0 or len(neg) == 0:
        raise ValueError("need at least one positive and one negative score")
    all_scores = np.concatenate([pos, neg])
    order = np.argsort(all_scores, kind="stable")
    ranks = np.empty(len(all_scores), dtype=np.float64)
    ranks[order] = np.arange(1, len(all_scores) + 1)
    # Average ranks over ties.
    sorted_scores = all_scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while (
            j + 1 < len(sorted_scores)
            and sorted_scores[j + 1] == sorted_scores[i]
        ):
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    rank_sum = ranks[: len(pos)].sum()
    u_stat = rank_sum - len(pos) * (len(pos) + 1) / 2.0
    return float(u_stat / (len(pos) * len(neg)))


def link_prediction_auc(
    embedding: np.ndarray,
    positive_edges: np.ndarray,
    negative_edges: np.ndarray,
) -> float:
    """AUC of distinguishing held-out edges from sampled non-edges."""
    return ranking_auc(
        score_edges(embedding, positive_edges),
        score_edges(embedding, negative_edges),
    )
