"""Clustering evaluation: from-scratch k-means + normalized mutual info.

Clustering is the third application the paper's introduction motivates
(after link prediction and classification).  ``kmeans`` is Lloyd's
algorithm with k-means++ seeding; :func:`normalized_mutual_information`
scores recovered clusters against ground-truth communities.
"""

from __future__ import annotations

import numpy as np


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by squared distance."""
    n = len(points)
    centers = np.empty((k, points.shape[1]))
    centers[0] = points[rng.integers(n)]
    distances = np.full(n, np.inf)
    for i in range(1, k):
        diff = points - centers[i - 1]
        distances = np.minimum(distances, np.einsum("ij,ij->i", diff, diff))
        total = distances.sum()
        if total == 0:
            centers[i:] = points[rng.integers(n, size=k - i)]
            break
        probabilities = distances / total
        centers[i] = points[rng.choice(n, p=probabilities)]
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    n_iterations: int = 50,
    seed: int = 0,
    tol: float = 1e-7,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm with k-means++ seeding.

    Returns:
        (labels, centers): per-point cluster ids and the final centers.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if not 1 <= k <= len(points):
        raise ValueError(f"k must be in [1, {len(points)}], got {k}")
    rng = np.random.default_rng(seed)
    centers = _kmeans_pp_init(points, k, rng)
    labels = np.zeros(len(points), dtype=np.int64)
    for _ in range(n_iterations):
        # Assign.
        distances = (
            np.einsum("ij,ij->i", points, points)[:, None]
            - 2.0 * points @ centers.T
            + np.einsum("ij,ij->i", centers, centers)[None, :]
        )
        labels = np.argmin(distances, axis=1)
        # Update.
        new_centers = centers.copy()
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members):
                new_centers[cluster] = members.mean(axis=0)
        shift = np.abs(new_centers - centers).max()
        centers = new_centers
        if shift < tol:
            break
    return labels, centers


def normalized_mutual_information(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> float:
    """NMI between two labelings, in [0, 1] (1 = identical partitions)."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if len(a) != len(b):
        raise ValueError(f"label lengths differ: {len(a)} vs {len(b)}")
    if len(a) == 0:
        raise ValueError("labels must be non-empty")
    _, a_ids = np.unique(a, return_inverse=True)
    _, b_ids = np.unique(b, return_inverse=True)
    n = len(a)
    contingency = np.zeros((a_ids.max() + 1, b_ids.max() + 1))
    np.add.at(contingency, (a_ids, b_ids), 1.0)
    joint = contingency / n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    nonzero = joint > 0
    mutual = float(
        (
            joint[nonzero]
            * np.log(joint[nonzero] / np.outer(pa, pb)[nonzero])
        ).sum()
    )
    def entropy(p: np.ndarray) -> float:
        positive = p[p > 0]
        return float(-(positive * np.log(positive)).sum())

    h_a, h_b = entropy(pa), entropy(pb)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    denominator = np.sqrt(h_a * h_b)
    if denominator == 0.0:
        return 0.0
    return float(np.clip(mutual / denominator, 0.0, 1.0))


def clustering_nmi(
    embedding: np.ndarray,
    labels: np.ndarray,
    k: int | None = None,
    seed: int = 0,
) -> float:
    """End-to-end probe: k-means on the embedding, NMI vs ground truth."""
    labels = np.asarray(labels)
    if k is None:
        k = len(np.unique(labels))
    predicted, _ = kmeans(np.asarray(embedding, dtype=np.float64), k, seed=seed)
    return normalized_mutual_information(predicted, labels)
