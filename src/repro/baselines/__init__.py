"""Baseline systems the paper compares against.

Two families:

- :mod:`repro.baselines.systems` — the paper's own arms (OMeGa-DRAM,
  OMeGa-PM, ProNE-DRAM, ProNE-HM, and the ablation arms), all of which
  are configurations of the same instrumented engine;
- :mod:`repro.baselines.external` — simulators of the published
  competitor systems (Ginex, MariusGNN, DistDGL, DistGER, SEM-SpMM,
  FusedMM), each modeling that system's architectural bottleneck (SSD
  I/O, out-of-core partition swapping, distributed sampling + gradient
  sync, semi-external SpMM, fused in-memory kernels) on the shared
  device models, driven by *real* sampling/caching/walk substrates in
  :mod:`repro.baselines.sampling`.
"""

from repro.baselines.comet import BufferSchedule, greedy_buffer_order, swap_efficiency
from repro.baselines.deepwalk import DeepWalkEmbedder, DeepWalkParams
from repro.baselines.node2vec import Node2VecWalker, node2vec_embed
from repro.baselines.external import (
    DistDGLSimulator,
    DistGERSimulator,
    ExternalSystemResult,
    FusedMMSimulator,
    GinexSimulator,
    MariusGNNSimulator,
    SEMSpMMSimulator,
)
from repro.baselines.sampling import (
    FeatureCache,
    NeighborSampler,
    RandomWalker,
    belady_hit_rate,
)
from repro.baselines.systems import (
    SystemArm,
    SystemResult,
    run_arm,
    standard_arms,
)

__all__ = [
    "BufferSchedule",
    "DeepWalkEmbedder",
    "DeepWalkParams",
    "DistDGLSimulator",
    "DistGERSimulator",
    "ExternalSystemResult",
    "FeatureCache",
    "FusedMMSimulator",
    "GinexSimulator",
    "MariusGNNSimulator",
    "NeighborSampler",
    "Node2VecWalker",
    "RandomWalker",
    "SEMSpMMSimulator",
    "SystemArm",
    "SystemResult",
    "belady_hit_rate",
    "greedy_buffer_order",
    "node2vec_embed",
    "run_arm",
    "swap_efficiency",
    "standard_arms",
]
