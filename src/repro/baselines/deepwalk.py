"""DeepWalk with skip-gram negative sampling, from scratch.

The paper's introduction motivates ProNE-class systems by how slow
random-walk embeddings are ("months for DeepWalk ... on 100 M nodes").
This is a compact but real implementation — uniform walks + SGNS trained
with vectorized SGD — used to (a) cross-check ProNE's embedding quality
against the classic baseline and (b) ground the walk-based cost models of
the DistGER simulator in real operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.sampling import RandomWalker
from repro.formats.csr import CSRMatrix


@dataclass(frozen=True)
class DeepWalkParams:
    """Hyper-parameters of DeepWalk/SGNS.

    Attributes:
        dim: embedding dimensionality.
        walks_per_node / walk_length: corpus shape.
        window: skip-gram context radius.
        negatives: negative samples per positive pair.
        learning_rate: SGD step (linearly decayed to 1e-4 of itself).
        epochs: passes over the pair list.
        seed: RNG seed.
    """

    dim: int = 32
    walks_per_node: int = 4
    walk_length: int = 20
    window: int = 3
    negatives: int = 3
    learning_rate: float = 0.05
    epochs: int = 2
    seed: int = 0


class DeepWalkEmbedder:
    """Walk-corpus + SGNS embedding trainer."""

    def __init__(self, params: DeepWalkParams | None = None) -> None:
        self.params = params or DeepWalkParams()

    def build_corpus(self, adjacency: CSRMatrix) -> list[np.ndarray]:
        """Generate the walk corpus (one array per walk)."""
        p = self.params
        walker = RandomWalker(adjacency, seed=p.seed)
        rng = np.random.default_rng(p.seed + 1)
        corpus = []
        nodes = np.arange(adjacency.n_rows)
        for _ in range(p.walks_per_node):
            rng.shuffle(nodes)
            for node in nodes:
                walk = walker.walk(int(node), p.walk_length)
                if len(walk) > 1:
                    corpus.append(walk)
        return corpus

    def skipgram_pairs(self, corpus: list[np.ndarray]) -> np.ndarray:
        """(center, context) pairs within the window, as an (m, 2) array."""
        window = self.params.window
        pairs = []
        for walk in corpus:
            n = len(walk)
            for offset in range(1, window + 1):
                if n <= offset:
                    continue
                centers = walk[:-offset]
                contexts = walk[offset:]
                pairs.append(np.stack([centers, contexts], axis=1))
                pairs.append(np.stack([contexts, centers], axis=1))
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(pairs)

    def train(
        self, n_nodes: int, pairs: np.ndarray, degrees: np.ndarray
    ) -> np.ndarray:
        """SGNS training over the pair list, vectorized per minibatch."""
        p = self.params
        rng = np.random.default_rng(p.seed + 2)
        scale = 0.5 / p.dim
        emb_in = rng.uniform(-scale, scale, size=(n_nodes, p.dim))
        emb_out = np.zeros((n_nodes, p.dim))
        if len(pairs) == 0:
            return emb_in
        # Negative-sampling distribution: degree^0.75 (word2vec).
        neg_prob = np.maximum(degrees.astype(np.float64), 1e-12) ** 0.75
        neg_prob /= neg_prob.sum()
        batch = 4096
        total_steps = p.epochs * len(pairs)
        step = 0
        for _ in range(p.epochs):
            order = rng.permutation(len(pairs))
            for start in range(0, len(order), batch):
                idx = order[start : start + batch]
                centers = pairs[idx, 0]
                contexts = pairs[idx, 1]
                lr = p.learning_rate * max(
                    1.0 - step / total_steps, 1e-4
                )
                step += len(idx)
                v = emb_in[centers]
                # Positive update.
                u_pos = emb_out[contexts]
                score = _sigmoid(np.einsum("ij,ij->i", v, u_pos))
                grad_pos = (score - 1.0)[:, None]
                v_grad = grad_pos * u_pos
                np.add.at(emb_out, contexts, -lr * grad_pos * v)
                # Negative updates.
                negatives = rng.choice(
                    n_nodes, size=(len(idx), p.negatives), p=neg_prob
                )
                u_neg = emb_out[negatives]  # (b, k, d)
                neg_score = _sigmoid(np.einsum("ij,ikj->ik", v, u_neg))
                v_grad += np.einsum("ik,ikj->ij", neg_score, u_neg)
                np.add.at(
                    emb_out,
                    negatives,
                    -lr * neg_score[:, :, None] * v[:, None, :],
                )
                np.add.at(emb_in, centers, -lr * v_grad)
        norms = np.linalg.norm(emb_in, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return emb_in / norms

    def embed(self, adjacency: CSRMatrix) -> np.ndarray:
        """Full DeepWalk: corpus, pairs, SGNS, l2-normalized embedding."""
        corpus = self.build_corpus(adjacency)
        pairs = self.skipgram_pairs(corpus)
        return self.train(
            adjacency.n_rows, pairs, adjacency.row_degrees()
        )

    def training_cost_macs(self, adjacency: CSRMatrix) -> float:
        """Multiply-accumulates of one training run (cost-model hook).

        Grounds the DistGER/DeepWalk runtime models: pairs x (1 +
        negatives) dot-products and updates of width ``dim``.
        """
        p = self.params
        avg_walk = min(p.walk_length, max(adjacency.nnz / adjacency.n_rows, 1))
        pairs = (
            adjacency.n_rows * p.walks_per_node * avg_walk * 2 * p.window
        )
        return float(pairs * p.epochs * (1 + p.negatives) * p.dim * 4)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)
    return out
