"""The paper's own system arms, as configurations of the shared engine.

Every arm of Figs. 12–16 is a knob setting of :class:`SpMMEngine` /
:class:`OMeGaEmbedder`; this module names them and runs them uniformly,
handling the expected out-of-memory failures of the DRAM-only systems on
the billion-scale graphs (reported as ``status="oom"`` the way the paper
reports "fails to run").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import (
    AllocationScheme,
    MemoryMode,
    OMeGaConfig,
    PlacementScheme,
)
from repro.core.embedding import EmbeddingResult, OMeGaEmbedder
from repro.faults import FaultInjector, FaultPlan, InjectedCrash
from repro.graphs.datasets import Dataset
from repro.memsim.allocator import CapacityError
from repro.memsim.persistence import CheckpointedEmbedder
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer
from repro.prone.model import ProNEParams


@dataclass(frozen=True)
class SystemArm:
    """A named engine configuration."""

    name: str
    config: OMeGaConfig

    def embedder(
        self,
        dataset: Dataset,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
        **overrides: object,
    ) -> OMeGaEmbedder:
        """Instantiate the arm's embedder for a dataset."""
        config = self.config.with_overrides(
            capacity_scale=dataset.scale, **overrides
        )
        return OMeGaEmbedder(
            config, tracer=tracer, metrics=metrics, faults=faults
        )


@dataclass
class SystemResult:
    """Outcome of one (arm, dataset) run.

    ``status`` is ``"ok"``, ``"recovered"`` (completed under a fault
    plan after resuming one or more injected crashes), or ``"oom"``
    (DRAM-only systems on graphs whose working set exceeds capacity —
    the bars the paper omits).
    """

    system: str
    dataset: str
    status: str
    sim_seconds: float
    result: EmbeddingResult | None = None

    @property
    def projected_full_scale_seconds(self) -> float:
        """Simulated time projected to the original graph's scale."""
        return self.sim_seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SystemResult({self.system} on {self.dataset}: {self.status},"
            f" {self.sim_seconds:.4f}s)"
        )


def standard_arms(n_threads: int = 30, dim: int = 32) -> list[SystemArm]:
    """The engine-backed arms of Fig. 12, in the paper's order.

    - **OMeGa**: heterogeneous memory with every optimization;
    - **OMeGa-DRAM**: the ideal all-DRAM baseline (OOMs at billion scale);
    - **OMeGa-PM**: the worst-case all-PM baseline;
    - **ProNE-DRAM**: the original model on DRAM — CSR-era scheduling
      (round-robin threads, OS interleaved placement, no prefetch);
    - **ProNE-HM**: the naive DRAM-PM port — matrices land on PM, no
      prefetching/streaming/placement awareness.
    """
    base = dict(n_threads=n_threads, dim=dim)
    return [
        SystemArm("OMeGa", OMeGaConfig(**base)),
        SystemArm(
            "OMeGa-DRAM",
            OMeGaConfig(
                memory_mode=MemoryMode.DRAM_ONLY,
                streaming_enabled=False,
                **base,
            ),
        ),
        SystemArm(
            "OMeGa-PM",
            OMeGaConfig(
                memory_mode=MemoryMode.PM_ONLY,
                prefetcher_enabled=False,
                streaming_enabled=False,
                **base,
            ),
        ),
        SystemArm(
            "ProNE-DRAM",
            OMeGaConfig(
                memory_mode=MemoryMode.DRAM_ONLY,
                allocation=AllocationScheme.NATURAL_ROUND_ROBIN,
                placement=PlacementScheme.INTERLEAVE,
                prefetcher_enabled=False,
                streaming_enabled=False,
                kernel_slowdown=2.5,
                graph_format="csr",
                **base,
            ),
        ),
        SystemArm(
            "ProNE-HM",
            OMeGaConfig(
                memory_mode=MemoryMode.HETEROGENEOUS,
                allocation=AllocationScheme.NATURAL_ROUND_ROBIN,
                placement=PlacementScheme.INTERLEAVE,
                prefetcher_enabled=False,
                streaming_enabled=False,
                kernel_slowdown=2.5,
                graph_format="csr",
                **base,
            ),
        ),
    ]


def run_arm(
    arm: SystemArm,
    dataset: Dataset,
    params: ProNEParams | None = None,
    tracer: SpanTracer | None = None,
    metrics: MetricsRegistry | None = None,
    faults: "FaultPlan | None" = None,
) -> SystemResult:
    """Run one arm on one dataset, catching the expected OOMs.

    Pass a ``tracer``/``metrics`` pair (e.g. a
    :class:`~repro.obs.export.TelemetrySession`'s) to capture the arm's
    spans and counters alongside its result.

    With a ``faults`` plan the arm runs under injection through the
    stage-checkpointing layer, each arm consuming a *fresh* injector so
    every system faces the identical chaos.  Injected crashes are
    resumed from the last durable checkpoint (repeatedly, if the plan
    arms several) and reported as ``status="recovered"`` — a valid
    completion for speedup purposes, since the resumed run reports the
    uninterrupted run's simulated total.
    """
    injector = None
    metrics_registry = metrics if metrics is not None else MetricsRegistry()
    if faults is not None:
        injector = FaultInjector(faults, metrics_registry)
    embedder = arm.embedder(
        dataset, tracer=tracer, metrics=metrics_registry, faults=injector
    )
    if params is not None:
        if params.dim != embedder.config.dim:
            raise ValueError(
                f"params.dim ({params.dim}) must match arm dim"
                f" ({embedder.config.dim})"
            )
        embedder.params = params
    status = "ok"
    try:
        if faults is None:
            result = embedder.embed_dataset(dataset)
        else:
            checkpointed = CheckpointedEmbedder(embedder)
            try:
                result = checkpointed.embed_with_checkpoints(
                    dataset.edges, dataset.n_nodes, faults=injector
                )
            except InjectedCrash:
                status = "recovered"
                while True:
                    try:
                        result = checkpointed.resume(faults=injector)
                        break
                    except InjectedCrash:
                        continue
    except CapacityError:
        return SystemResult(
            system=arm.name,
            dataset=dataset.name,
            status="oom",
            sim_seconds=float("nan"),
        )
    return SystemResult(
        system=arm.name,
        dataset=dataset.name,
        status=status,
        sim_seconds=result.sim_seconds,
        result=result,
    )


def speedup_table(results: list[SystemResult], reference: str = "OMeGa") -> dict:
    """Per-system speedup of ``reference`` over each other system.

    Systems that OOM'd are skipped (as the paper does); runs that
    recovered from injected crashes count as completions, since resume
    reports the uninterrupted run's simulated total.  Returns
    {system: geometric-mean speedup across datasets}.
    """
    by_system: dict[str, dict[str, float]] = {}
    for res in results:
        by_system.setdefault(res.system, {})[res.dataset] = (
            res.sim_seconds
            if res.status in ("ok", "recovered")
            else float("nan")
        )
    if reference not in by_system:
        raise ValueError(f"no results for reference system {reference!r}")
    ref = by_system[reference]
    table: dict[str, float] = {}
    for system, times in by_system.items():
        if system == reference:
            continue
        ratios = [
            times[ds] / ref[ds]
            for ds in times
            if ds in ref
            and np.isfinite(times[ds])
            and np.isfinite(ref[ds])
            and ref[ds] > 0
        ]
        if ratios:
            table[system] = float(np.exp(np.mean(np.log(ratios))))
    return table
