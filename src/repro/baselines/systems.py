"""The paper's own system arms, as configurations of the shared engine.

Every arm of Figs. 12–16 is a knob setting of :class:`SpMMEngine` /
:class:`OMeGaEmbedder`; this module names them and runs them uniformly,
handling the expected out-of-memory failures of the DRAM-only systems on
the billion-scale graphs (reported as ``status="oom"`` the way the paper
reports "fails to run").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import (
    AllocationScheme,
    MemoryMode,
    OMeGaConfig,
    PlacementScheme,
)
from repro.core.embedding import EmbeddingResult, OMeGaEmbedder
from repro.graphs.datasets import Dataset
from repro.memsim.allocator import CapacityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer
from repro.prone.model import ProNEParams


@dataclass(frozen=True)
class SystemArm:
    """A named engine configuration."""

    name: str
    config: OMeGaConfig

    def embedder(
        self,
        dataset: Dataset,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
        **overrides: object,
    ) -> OMeGaEmbedder:
        """Instantiate the arm's embedder for a dataset."""
        config = self.config.with_overrides(
            capacity_scale=dataset.scale, **overrides
        )
        return OMeGaEmbedder(config, tracer=tracer, metrics=metrics)


@dataclass
class SystemResult:
    """Outcome of one (arm, dataset) run.

    ``status`` is ``"ok"`` or ``"oom"`` (DRAM-only systems on graphs
    whose working set exceeds capacity — the bars the paper omits).
    """

    system: str
    dataset: str
    status: str
    sim_seconds: float
    result: EmbeddingResult | None = None

    @property
    def projected_full_scale_seconds(self) -> float:
        """Simulated time projected to the original graph's scale."""
        return self.sim_seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SystemResult({self.system} on {self.dataset}: {self.status},"
            f" {self.sim_seconds:.4f}s)"
        )


def standard_arms(n_threads: int = 30, dim: int = 32) -> list[SystemArm]:
    """The engine-backed arms of Fig. 12, in the paper's order.

    - **OMeGa**: heterogeneous memory with every optimization;
    - **OMeGa-DRAM**: the ideal all-DRAM baseline (OOMs at billion scale);
    - **OMeGa-PM**: the worst-case all-PM baseline;
    - **ProNE-DRAM**: the original model on DRAM — CSR-era scheduling
      (round-robin threads, OS interleaved placement, no prefetch);
    - **ProNE-HM**: the naive DRAM-PM port — matrices land on PM, no
      prefetching/streaming/placement awareness.
    """
    base = dict(n_threads=n_threads, dim=dim)
    return [
        SystemArm("OMeGa", OMeGaConfig(**base)),
        SystemArm(
            "OMeGa-DRAM",
            OMeGaConfig(
                memory_mode=MemoryMode.DRAM_ONLY,
                streaming_enabled=False,
                **base,
            ),
        ),
        SystemArm(
            "OMeGa-PM",
            OMeGaConfig(
                memory_mode=MemoryMode.PM_ONLY,
                prefetcher_enabled=False,
                streaming_enabled=False,
                **base,
            ),
        ),
        SystemArm(
            "ProNE-DRAM",
            OMeGaConfig(
                memory_mode=MemoryMode.DRAM_ONLY,
                allocation=AllocationScheme.NATURAL_ROUND_ROBIN,
                placement=PlacementScheme.INTERLEAVE,
                prefetcher_enabled=False,
                streaming_enabled=False,
                kernel_slowdown=2.5,
                graph_format="csr",
                **base,
            ),
        ),
        SystemArm(
            "ProNE-HM",
            OMeGaConfig(
                memory_mode=MemoryMode.HETEROGENEOUS,
                allocation=AllocationScheme.NATURAL_ROUND_ROBIN,
                placement=PlacementScheme.INTERLEAVE,
                prefetcher_enabled=False,
                streaming_enabled=False,
                kernel_slowdown=2.5,
                graph_format="csr",
                **base,
            ),
        ),
    ]


def run_arm(
    arm: SystemArm,
    dataset: Dataset,
    params: ProNEParams | None = None,
    tracer: SpanTracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> SystemResult:
    """Run one arm on one dataset, catching the expected OOMs.

    Pass a ``tracer``/``metrics`` pair (e.g. a
    :class:`~repro.obs.export.TelemetrySession`'s) to capture the arm's
    spans and counters alongside its result.
    """
    embedder = arm.embedder(dataset, tracer=tracer, metrics=metrics)
    if params is not None:
        if params.dim != embedder.config.dim:
            raise ValueError(
                f"params.dim ({params.dim}) must match arm dim"
                f" ({embedder.config.dim})"
            )
        embedder.params = params
    try:
        result = embedder.embed_dataset(dataset)
    except CapacityError:
        return SystemResult(
            system=arm.name,
            dataset=dataset.name,
            status="oom",
            sim_seconds=float("nan"),
        )
    return SystemResult(
        system=arm.name,
        dataset=dataset.name,
        status="ok",
        sim_seconds=result.sim_seconds,
        result=result,
    )


def speedup_table(results: list[SystemResult], reference: str = "OMeGa") -> dict:
    """Per-system speedup of ``reference`` over each other system.

    Systems that OOM'd are skipped (as the paper does).  Returns
    {system: geometric-mean speedup across datasets}.
    """
    by_system: dict[str, dict[str, float]] = {}
    for res in results:
        by_system.setdefault(res.system, {})[res.dataset] = (
            res.sim_seconds if res.status == "ok" else float("nan")
        )
    if reference not in by_system:
        raise ValueError(f"no results for reference system {reference!r}")
    ref = by_system[reference]
    table: dict[str, float] = {}
    for system, times in by_system.items():
        if system == reference:
            continue
        ratios = [
            times[ds] / ref[ds]
            for ds in times
            if ds in ref
            and np.isfinite(times[ds])
            and np.isfinite(ref[ds])
            and ref[ds] > 0
        ]
        if ratios:
            table[system] = float(np.exp(np.mean(np.log(ratios))))
    return table
