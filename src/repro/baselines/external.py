"""Simulators of the published competitor systems (Figs. 12 and 18).

We cannot run Ginex / MariusGNN / DistDGL / DistGER / SEM-SpMM / FusedMM
(they need V100 GPUs, a 4-machine cluster and hundreds of GiB of RAM), so
each is modeled by its architectural bottleneck on the shared device
models, driven by real substrates where data movement depends on the
graph:

========== =========================================================
System     Bottleneck modeled
========== =========================================================
Ginex      SSD feature fetches under provably-optimal (Belady) caching,
           from a *real* neighbor-sampling trace
MariusGNN  out-of-core partition-buffer swaps (sequential SSD I/O)
DistDGL    distributed neighbor sampling (~80% of runtime) + gradient
           synchronization over the 25 GbE model
DistGER    distributed information-oriented random walks + SGNS updates,
           from a *real* walk generator
SEM-SpMM   semi-external SpMM: sparse matrix streamed from SSD
FusedMM    fused in-memory kernels, single-socket DRAM, CSR scheduling
           (an engine configuration; OOMs at billion scale like the
           paper reports)
========== =========================================================

Calibration constants (epochs, fanouts, walk lengths) follow the default
configurations of the respective papers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.sampling import NeighborSampler, RandomWalker, belady_hit_rate
from repro.core.config import (
    AllocationScheme,
    MemoryMode,
    OMeGaConfig,
    PlacementScheme,
)
from repro.core.spmm import SPARSE_BYTES_PER_NNZ, SpMMEngine
from repro.graphs.datasets import Dataset
from repro.memsim.allocator import CapacityError
from repro.memsim.costmodel import CostModel
from repro.memsim.devices import (
    AccessPattern,
    Locality,
    MemoryKind,
    Operation,
)
from repro.memsim.numa import NumaTopology


@dataclass
class ExternalSystemResult:
    """Outcome of one competitor run on one dataset."""

    system: str
    dataset: str
    status: str
    sim_seconds: float

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExternalSystemResult({self.system} on {self.dataset}:"
            f" {self.status}, {self.sim_seconds:.4f}s)"
        )


class _BaseSimulator:
    """Shared plumbing: device handles and the cost model."""

    name = "base"

    def __init__(
        self,
        topology: NumaTopology | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.topology = topology or NumaTopology()
        self.cost_model = cost_model or CostModel()

    def _ssd_seq_read(self, nbytes: float) -> float:
        return self.cost_model.access_time(
            self.topology.device(MemoryKind.SSD),
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            nbytes,
        )

    def _ssd_rand_read(self, nbytes: float) -> float:
        return self.cost_model.access_time(
            self.topology.device(MemoryKind.SSD),
            Operation.READ,
            AccessPattern.RANDOM,
            Locality.LOCAL,
            nbytes,
        )

    def _net_transfer(self, nbytes: float) -> float:
        return self.cost_model.access_time(
            self.topology.device(MemoryKind.NETWORK),
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            nbytes,
        )

    def run(self, dataset: Dataset, dim: int = 32) -> ExternalSystemResult:
        """End-to-end embedding-generation time on a dataset."""
        raise NotImplementedError


class GinexSimulator(_BaseSimulator):
    """Ginex (VLDB'22): SSD-based GNN training, one GPU, optimal caching.

    Per epoch, every minibatch samples an L-hop neighborhood and fetches
    the features of all touched nodes; Ginex's contribution is serving a
    maximal share of those fetches from an in-memory cache whose
    replacement is offline-optimal (computed from the pre-recorded
    sampling trace).  The remainder hits the SSD at random-read
    bandwidth — the bottleneck the paper's Fig. 12 exposes.
    """

    name = "Ginex"

    def __init__(
        self,
        epochs: int = 15,
        batch_size: int = 1024,
        fanouts: tuple[int, ...] = (15, 10, 5),
        cache_fraction: float = 0.2,
        sample_batches: int = 4,
        gpu_flops: float = 1.0e13,
        seed: int = 0,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        self.epochs = epochs
        self.batch_size = batch_size
        self.fanouts = fanouts
        self.cache_fraction = cache_fraction
        self.sample_batches = sample_batches
        self.gpu_flops = gpu_flops
        self.seed = seed

    def run(self, dataset: Dataset, dim: int = 32) -> ExternalSystemResult:
        adjacency = dataset.adjacency_csr()
        sampler = NeighborSampler(adjacency, seed=self.seed)
        rng = np.random.default_rng(self.seed)
        n = dataset.n_nodes
        feature_row_bytes = dim * 8.0
        # Measure a few real minibatches; extrapolate per-epoch traffic.
        touched_counts: list[int] = []
        edge_counts: list[int] = []
        trace: list[np.ndarray] = []
        for _ in range(self.sample_batches):
            batch = rng.choice(n, size=min(self.batch_size, n), replace=False)
            touched, n_edges = sampler.sample_minibatch(batch, self.fanouts)
            touched_counts.append(len(touched))
            edge_counts.append(n_edges)
            trace.append(touched)
        cache_entries = int(self.cache_fraction * n)
        hit_rate = belady_hit_rate(np.concatenate(trace), cache_entries)
        batches_per_epoch = max(1, -(-n // self.batch_size))
        touched_per_batch = float(np.mean(touched_counts))
        edges_per_batch = float(np.mean(edge_counts))
        miss_bytes = (
            self.epochs
            * batches_per_epoch
            * touched_per_batch
            * feature_row_bytes
            * (1.0 - hit_rate)
        )
        # Ginex issues feature fetches through deep asynchronous NVMe
        # queues (its "superbatch" pipeline), so random I/O runs at the
        # device's random *bandwidth* rather than serialized page latency.
        ssd = self.topology.device(MemoryKind.SSD)
        io_seconds = miss_bytes / ssd.bandwidth(
            Operation.READ, AccessPattern.RANDOM, Locality.LOCAL, threads=8
        )
        sampling_ops = self.epochs * batches_per_epoch * edges_per_batch * 30.0
        sample_seconds = self.cost_model.compute_time(sampling_ops)
        gpu_flop = (
            self.epochs * batches_per_epoch * edges_per_batch * dim * 4.0
        )
        gpu_seconds = gpu_flop / self.gpu_flops
        return ExternalSystemResult(
            system=self.name,
            dataset=dataset.name,
            status="ok",
            sim_seconds=io_seconds + sample_seconds + gpu_seconds,
        )


class MariusGNNSimulator(_BaseSimulator):
    """MariusGNN (EuroSys'23): out-of-core training via partition swaps.

    Node features and embeddings are split into ``n_partitions`` on SSD;
    an epoch walks a buffer-swap order covering all partition pairs, so
    the sequential I/O per epoch is roughly ``replication x feature
    bytes`` plus the edge list.  GPU compute overlaps, so I/O dominates.
    """

    name = "MariusGNN"

    def __init__(
        self,
        epochs: int = 25,
        n_partitions: int = 8,
        buffer_partitions: int = 4,
        hidden_dim: int = 256,
        gpu_flops: float = 1.0e13,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        if buffer_partitions < 2 or n_partitions < buffer_partitions:
            raise ValueError(
                "need 2 <= buffer_partitions <= n_partitions, got"
                f" {buffer_partitions}, {n_partitions}"
            )
        self.epochs = epochs
        self.n_partitions = n_partitions
        self.buffer_partitions = buffer_partitions
        self.hidden_dim = hidden_dim
        self.gpu_flops = gpu_flops

    def swaps_per_epoch(self) -> int:
        """Partition loads per epoch under the greedy COMET buffer order.

        Computed by actually running the buffer-ordering algorithm (see
        :mod:`repro.baselines.comet`), not by a closed-form guess.
        """
        from repro.baselines.comet import greedy_buffer_order

        schedule = greedy_buffer_order(
            self.n_partitions, self.buffer_partitions
        )
        return schedule.total_loads

    def run(self, dataset: Dataset, dim: int = 32) -> ExternalSystemResult:
        feature_bytes = dataset.n_nodes * dim * 8.0
        partition_bytes = feature_bytes / self.n_partitions
        edge_bytes = 2.0 * dataset.n_edges * 12.0
        # Per epoch: swap reads, updated-embedding write-back, edge scan.
        io_per_epoch = (
            self.swaps_per_epoch() * partition_bytes
            + feature_bytes
            + edge_bytes
        )
        io_seconds = self.epochs * self._ssd_seq_read(io_per_epoch)
        gpu_flop = (
            self.epochs * 2.0 * dataset.n_edges * dim * self.hidden_dim * 4.0
        )
        gpu_seconds = gpu_flop / self.gpu_flops
        return ExternalSystemResult(
            system=self.name,
            dataset=dataset.name,
            status="ok",
            sim_seconds=io_seconds + gpu_seconds,
        )


class DistDGLSimulator(_BaseSimulator):
    """DistDGL (IA3'20): 4-machine distributed GNN training.

    The paper attributes ~80% of DistDGL's runtime to graph sampling and
    the rest mostly to gradient synchronization.  Remote neighbor
    lookups and feature pulls cross the 25 GbE link with probability
    ``(machines-1)/machines`` under random partitioning.
    """

    name = "DistDGL"

    def __init__(
        self,
        machines: int = 4,
        epochs: int = 10,
        batch_size: int = 1024,
        fanouts: tuple[int, ...] = (15, 10, 5),
        sample_batches: int = 4,
        seed: int = 0,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        self.machines = machines
        self.epochs = epochs
        self.batch_size = batch_size
        self.fanouts = fanouts
        self.sample_batches = sample_batches
        self.seed = seed

    def run(self, dataset: Dataset, dim: int = 32) -> ExternalSystemResult:
        adjacency = dataset.adjacency_csr()
        sampler = NeighborSampler(adjacency, seed=self.seed)
        rng = np.random.default_rng(self.seed)
        n = dataset.n_nodes
        touched_counts: list[int] = []
        edge_counts: list[int] = []
        for _ in range(self.sample_batches):
            batch = rng.choice(n, size=min(self.batch_size, n), replace=False)
            touched, n_edges = sampler.sample_minibatch(batch, self.fanouts)
            touched_counts.append(len(touched))
            edge_counts.append(n_edges)
        batches_per_epoch = max(1, -(-n // self.batch_size))
        # Remote share measured from the actual hash partitioning DistDGL
        # defaults to, not assumed.
        from repro.graphs.partition import edge_cut_fraction, hash_partition

        assignment = hash_partition(n, self.machines, seed=self.seed)
        remote_share = edge_cut_fraction(dataset.edges, assignment)
        # Sampling RPCs + feature pulls over the network, parallel across
        # machines but serialized within a batch (synchronous training).
        feature_bytes_per_batch = (
            float(np.mean(touched_counts)) * dim * 8.0 * remote_share
        )
        sample_rpc_bytes_per_batch = float(np.mean(edge_counts)) * 16.0 * remote_share
        per_batch_net = self._net_transfer(
            feature_bytes_per_batch + sample_rpc_bytes_per_batch
        )
        sampling_ops = float(np.mean(edge_counts)) * 60.0
        per_batch_sample = self.cost_model.compute_time(sampling_ops)
        # Gradient all-reduce per batch.
        grad_bytes = dim * dim * 8.0 * 4.0
        per_batch_sync = self._net_transfer(grad_bytes) * np.log2(self.machines)
        per_epoch = batches_per_epoch * (
            per_batch_net + per_batch_sample + per_batch_sync
        )
        return ExternalSystemResult(
            system=self.name,
            dataset=dataset.name,
            status="ok",
            sim_seconds=self.epochs * per_epoch / 1.0,
        )


class DistGERSimulator(_BaseSimulator):
    """DistGER (VLDB'23): distributed information-oriented random walks.

    DistGER generates an effectiveness-truncated walk corpus and trains
    SGNS over it, partitioned across 4 machines.  Its walks are ~40%
    shorter than DeepWalk's for equal quality (information-oriented
    truncation), which is why it is competitive with OMeGa on large
    graphs.
    """

    name = "DistGER"

    def __init__(
        self,
        machines: int = 4,
        walks_per_node: int = 10,
        walk_length: int = 80,
        truncation: float = 0.6,
        window: int = 5,
        negatives: int = 5,
        threads_per_machine: int = 30,
        seed: int = 0,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        self.machines = machines
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.truncation = truncation
        self.window = window
        self.negatives = negatives
        self.threads_per_machine = threads_per_machine
        self.seed = seed

    def run(self, dataset: Dataset, dim: int = 32) -> ExternalSystemResult:
        adjacency = dataset.adjacency_csr()
        walker = RandomWalker(adjacency, seed=self.seed)
        corpus_steps = walker.corpus_size(
            self.walks_per_node, int(self.walk_length * self.truncation)
        )
        total_threads = self.machines * self.threads_per_machine
        # Walk generation: one random DRAM access per step.
        dram = self.topology.device(MemoryKind.DRAM)
        walk_seconds = self.cost_model.access_time(
            dram,
            Operation.READ,
            AccessPattern.RANDOM,
            Locality.LOCAL,
            corpus_steps * 64.0,
            threads_sharing=self.threads_per_machine,
        ) / self.machines
        # SGNS training: window * (1 + negatives) dot-products per step.
        train_macs = (
            corpus_steps * self.window * (1 + self.negatives) * dim * 2.0
        )
        train_seconds = self.cost_model.compute_time(train_macs / total_threads)
        # Partition-boundary message exchange.
        net_seconds = self._net_transfer(corpus_steps * 8.0 / self.machines)
        return ExternalSystemResult(
            system=self.name,
            dataset=dataset.name,
            status="ok",
            sim_seconds=walk_seconds + train_seconds + net_seconds,
        )


class SEMSpMMSimulator(_BaseSimulator):
    """SEM-SpMM (TPDS'17): semi-external SpMM — sparse on SSD, dense in RAM.

    One SpMM streams the sparse matrix from the SSD (sequential) while
    gathering dense rows in memory; the SSD stream is the bottleneck on
    every graph larger than the page cache.
    """

    name = "SEM-SpMM"

    def __init__(
        self, threads: int = 30, panel_dim: int = 8, **kwargs: object
    ) -> None:
        super().__init__(**kwargs)
        self.threads = threads
        if panel_dim < 1:
            raise ValueError(f"panel_dim must be >= 1, got {panel_dim}")
        self.panel_dim = panel_dim

    def spmm_seconds(self, nnz: int, n_nodes: int, dim: int = 32) -> float:
        """Time of one SpMM with the given sparse population.

        Semi-external execution processes the dense operand in column
        panels of ``panel_dim`` to bound the in-memory footprint,
        re-streaming the SSD-resident sparse matrix once per panel.
        """
        n_passes = max(1, -(-dim // self.panel_dim))
        sparse_bytes = float(nnz) * SPARSE_BYTES_PER_NNZ * n_passes
        io_seconds = self._ssd_seq_read(sparse_bytes)
        dram = self.topology.device(MemoryKind.DRAM)
        gather_seconds = self.cost_model.entropy_access_time(
            dram,
            Locality.LOCAL,
            float(nnz) * dim * 8.0,
            z_entropy=0.85,
            threads_sharing=self.threads,
        ) / self.threads
        compute_seconds = self.cost_model.compute_time(
            float(nnz) * dim / self.threads
        )
        return io_seconds + gather_seconds + compute_seconds

    def run(self, dataset: Dataset, dim: int = 32) -> ExternalSystemResult:
        nnz = 2 * dataset.n_edges
        return ExternalSystemResult(
            system=self.name,
            dataset=dataset.name,
            status="ok",
            sim_seconds=self.spmm_seconds(nnz, dataset.n_nodes, dim),
        )


class FusedMMSimulator(_BaseSimulator):
    """FusedMM (IPDPS'21): fused in-memory SpMM/SDDMM kernels.

    FusedMM is a DRAM-resident CSR kernel without degree-aware
    scheduling or NUMA placement; we run it as an engine configuration
    (DRAM-only, round-robin threads, first-touch Local placement) with a
    fused-kernel discount on the accumulate pass.  Like the original, it
    OOMs when the working set exceeds DRAM (Twitter-2010 in the paper).
    """

    name = "FusedMM"

    def __init__(
        self,
        threads: int = 30,
        fusion_discount: float = 0.85,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        self.threads = threads
        if not 0.0 < fusion_discount <= 1.0:
            raise ValueError(
                f"fusion_discount must be in (0, 1], got {fusion_discount}"
            )
        self.fusion_discount = fusion_discount

    def _engine(self, capacity_scale: int) -> SpMMEngine:
        config = OMeGaConfig(
            n_threads=self.threads,
            memory_mode=MemoryMode.DRAM_ONLY,
            allocation=AllocationScheme.NATURAL_ROUND_ROBIN,
            placement=PlacementScheme.LOCAL,
            prefetcher_enabled=False,
            streaming_enabled=False,
            # General-purpose CSR kernel vs OMeGa's degree-blocked CSDB
            # loop; partially recovered by the fusion discount below.
            kernel_slowdown=2.0,
            capacity_scale=capacity_scale,
            topology=self.topology,
        )
        return SpMMEngine(config, cost_model=self.cost_model)

    def spmm_result(self, dataset: Dataset, dim: int = 32):
        """One engine SpMM under the FusedMM configuration."""
        engine = self._engine(dataset.scale)
        matrix = dataset.adjacency_csdb()
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((dataset.n_nodes, dim))
        return engine.multiply(matrix, dense, compute=False)

    def run(self, dataset: Dataset, dim: int = 32) -> ExternalSystemResult:
        try:
            result = self.spmm_result(dataset, dim)
        except CapacityError:
            return ExternalSystemResult(
                system=self.name,
                dataset=dataset.name,
                status="oom",
                sim_seconds=float("nan"),
            )
        return ExternalSystemResult(
            system=self.name,
            dataset=dataset.name,
            status="ok",
            sim_seconds=result.sim_seconds * self.fusion_discount,
        )
