"""node2vec biased second-order random walks (Grover & Leskovec 2016).

The paper's introduction quotes node2vec among the months-slow walk
baselines.  This module implements the (p, q)-biased walk — return
parameter ``p`` discourages backtracking, in-out parameter ``q``
interpolates BFS-like and DFS-like exploration — on top of the same CSR
substrate as :class:`repro.baselines.sampling.RandomWalker`, so it can
drive the DeepWalk/SGNS trainer for a full node2vec embedding.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix


class Node2VecWalker:
    """Second-order biased walk generator.

    Args:
        adjacency: CSR adjacency of the (undirected) graph.
        p: return parameter — larger p makes revisiting the previous
            node less likely.
        q: in-out parameter — q > 1 biases toward the previous node's
            neighborhood (BFS-like), q < 1 toward exploration (DFS-like).
        seed: RNG seed.
    """

    def __init__(
        self,
        adjacency: CSRMatrix,
        p: float = 1.0,
        q: float = 1.0,
        seed: int = 0,
    ) -> None:
        if p <= 0 or q <= 0:
            raise ValueError(f"p and q must be > 0, got p={p}, q={q}")
        self.adjacency = adjacency
        self.p = p
        self.q = q
        self.rng = np.random.default_rng(seed)
        # Neighbor sets for O(1) membership tests in the bias computation.
        self._neighbor_sets = [
            set(adjacency.row(i)[0].tolist()) for i in range(adjacency.n_rows)
        ]

    def _step_weights(self, previous: int, current: int) -> tuple[np.ndarray, np.ndarray]:
        neighbors, _ = self.adjacency.row(current)
        weights = np.empty(len(neighbors), dtype=np.float64)
        prev_neighbors = self._neighbor_sets[previous]
        for index, candidate in enumerate(neighbors):
            node = int(candidate)
            if node == previous:
                weights[index] = 1.0 / self.p
            elif node in prev_neighbors:
                weights[index] = 1.0
            else:
                weights[index] = 1.0 / self.q
        return neighbors, weights

    def walk(self, start: int, length: int) -> np.ndarray:
        """One biased walk of up to ``length`` steps from ``start``."""
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        path = [int(start)]
        if length == 0:
            return np.asarray(path, dtype=np.int64)
        first_neighbors, _ = self.adjacency.row(int(start))
        if len(first_neighbors) == 0:
            return np.asarray(path, dtype=np.int64)
        path.append(int(first_neighbors[self.rng.integers(len(first_neighbors))]))
        while len(path) < length + 1:
            previous, current = path[-2], path[-1]
            neighbors, weights = self._step_weights(previous, current)
            if len(neighbors) == 0:
                break
            probabilities = weights / weights.sum()
            path.append(
                int(neighbors[self.rng.choice(len(neighbors), p=probabilities)])
            )
        return np.asarray(path, dtype=np.int64)

    def build_corpus(
        self, walks_per_node: int, walk_length: int
    ) -> list[np.ndarray]:
        """Full walk corpus in shuffled node order."""
        nodes = np.arange(self.adjacency.n_rows)
        corpus: list[np.ndarray] = []
        for _ in range(walks_per_node):
            self.rng.shuffle(nodes)
            for node in nodes:
                walk = self.walk(int(node), walk_length)
                if len(walk) > 1:
                    corpus.append(walk)
        return corpus


def node2vec_embed(
    adjacency: CSRMatrix,
    dim: int = 32,
    p: float = 1.0,
    q: float = 1.0,
    walks_per_node: int = 4,
    walk_length: int = 20,
    epochs: int = 2,
    seed: int = 0,
) -> np.ndarray:
    """Full node2vec: biased corpus + the shared SGNS trainer."""
    from repro.baselines.deepwalk import DeepWalkEmbedder, DeepWalkParams

    walker = Node2VecWalker(adjacency, p=p, q=q, seed=seed)
    corpus = walker.build_corpus(walks_per_node, walk_length)
    trainer = DeepWalkEmbedder(
        DeepWalkParams(
            dim=dim,
            walks_per_node=walks_per_node,
            walk_length=walk_length,
            epochs=epochs,
            seed=seed,
        )
    )
    pairs = trainer.skipgram_pairs(corpus)
    return trainer.train(adjacency.n_rows, pairs, adjacency.row_degrees())
