"""Real workload substrates for the competitor simulators.

The GNN/random-walk competitors are dominated by *data movement driven by
sampling*, so their simulators are fed by real sampling machinery rather
than closed-form guesses:

- :class:`NeighborSampler` — layered neighbor sampling (GraphSAGE-style)
  producing actual minibatch node sets, from which the Ginex/DistDGL
  models take their feature-fetch byte counts;
- :class:`FeatureCache` — an LRU feature cache, plus
  :func:`belady_hit_rate`, an offline optimal (Belady) hit-rate
  computation matching Ginex's "provably optimal in-memory caching";
- :class:`RandomWalker` — the walk generator behind the DistGER model.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.formats.csr import CSRMatrix


class NeighborSampler:
    """Layered uniform neighbor sampling over a CSR adjacency."""

    def __init__(self, adjacency: CSRMatrix, seed: int = 0) -> None:
        self.adjacency = adjacency
        self.rng = np.random.default_rng(seed)

    def sample_layer(self, frontier: np.ndarray, fanout: int) -> np.ndarray:
        """Sample up to ``fanout`` neighbors of every frontier node.

        Returns the (deduplicated) next frontier.
        """
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        sampled: list[np.ndarray] = []
        for node in np.asarray(frontier, dtype=np.int64):
            neighbors, _ = self.adjacency.row(int(node))
            if len(neighbors) == 0:
                continue
            if len(neighbors) <= fanout:
                sampled.append(neighbors)
            else:
                idx = self.rng.choice(len(neighbors), size=fanout, replace=False)
                sampled.append(neighbors[idx])
        if not sampled:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(sampled))

    def sample_minibatch(
        self, batch_nodes: np.ndarray, fanouts: tuple[int, ...] = (10, 5)
    ) -> tuple[np.ndarray, int]:
        """Full L-layer sample for one minibatch.

        Returns:
            (all touched nodes, sampled edge count) — the inputs to the
            feature-fetch and compute cost models.
        """
        frontier = np.unique(np.asarray(batch_nodes, dtype=np.int64))
        touched = [frontier]
        n_edges = 0
        for fanout in fanouts:
            nxt = self.sample_layer(frontier, fanout)
            n_edges += min(len(frontier) * fanout, int(nxt.size * fanout))
            touched.append(nxt)
            frontier = nxt
        return np.unique(np.concatenate(touched)), n_edges


class FeatureCache:
    """LRU cache over node-feature rows (capacity in entries)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, node: int) -> bool:
        """Touch one node's features; returns True on a hit."""
        if self.capacity == 0:
            self.misses += 1
            return False
        if node in self._entries:
            self._entries.move_to_end(node)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[node] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False

    def access_many(self, nodes: np.ndarray) -> int:
        """Touch a batch; returns the number of misses."""
        return sum(0 if self.access(int(node)) else 1 for node in nodes)

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def belady_hit_rate(access_sequence: np.ndarray, capacity: int) -> float:
    """Offline-optimal (Belady) hit rate of an access sequence.

    Ginex's contribution is provably optimal feature caching computed
    from a pre-recorded sampling trace; this is that computation.  Evicts
    the resident entry whose next use is farthest in the future.
    """
    sequence = np.asarray(access_sequence, dtype=np.int64)
    if capacity <= 0 or len(sequence) == 0:
        return 0.0
    # Precompute each position's next-use index.
    next_use = np.full(len(sequence), np.iinfo(np.int64).max, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for i in range(len(sequence) - 1, -1, -1):
        key = int(sequence[i])
        next_use[i] = last_seen.get(key, np.iinfo(np.int64).max)
        last_seen[key] = i
    resident: dict[int, int] = {}  # node -> its next use index
    hits = 0
    for i, raw in enumerate(sequence):
        key = int(raw)
        if key in resident:
            hits += 1
            resident[key] = int(next_use[i])
            continue
        if len(resident) >= capacity:
            victim = max(resident, key=resident.__getitem__)
            del resident[victim]
        resident[key] = int(next_use[i])
    return hits / len(sequence)


class RandomWalker:
    """Uniform random-walk generator (the DistGER/DeepWalk substrate)."""

    def __init__(self, adjacency: CSRMatrix, seed: int = 0) -> None:
        self.adjacency = adjacency
        self.rng = np.random.default_rng(seed)

    def walk(self, start: int, length: int) -> np.ndarray:
        """One uniform walk of ``length`` steps from ``start``."""
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        path = np.empty(length + 1, dtype=np.int64)
        path[0] = start
        node = start
        for step in range(1, length + 1):
            neighbors, _ = self.adjacency.row(int(node))
            if len(neighbors) == 0:
                return path[:step]
            node = int(neighbors[self.rng.integers(len(neighbors))])
            path[step] = node
        return path

    def corpus_size(
        self, walks_per_node: int, walk_length: int, sample_nodes: int = 256
    ) -> float:
        """Estimated total walk steps for a full corpus, extrapolated from
        a node sample (walks truncate at dead ends)."""
        n = self.adjacency.n_rows
        nodes = self.rng.choice(n, size=min(sample_nodes, n), replace=False)
        lengths = [len(self.walk(int(v), walk_length)) for v in nodes]
        return float(np.mean(lengths)) * walks_per_node * n
