"""COMET-style buffer ordering for out-of-core training (MariusGNN).

MariusGNN keeps ``buffer_size`` of ``n_partitions`` embedding partitions
in memory and must visit *every ordered pair* of partitions (each edge
bucket) per epoch while minimizing partition swaps.  This module
implements the greedy buffer-aware ordering the Marius line of systems
uses, plus the resulting swap count the simulator charges as SSD I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BufferSchedule:
    """One epoch's buffer plan.

    Attributes:
        order: visited (i, j) partition pairs (unordered pairs incl.
            diagonal), covering all of them exactly once.
        swaps: partitions loaded after the initial buffer fill.
        initial_fill: partitions loaded to seed the buffer.
    """

    order: tuple[tuple[int, int], ...]
    swaps: int
    initial_fill: int

    @property
    def total_loads(self) -> int:
        """All partition loads of the epoch (fill + swaps)."""
        return self.initial_fill + self.swaps


def pair_universe(n_partitions: int) -> list[tuple[int, int]]:
    """All unordered partition pairs including the diagonal."""
    return [
        (i, j)
        for i in range(n_partitions)
        for j in range(i, n_partitions)
    ]


def greedy_buffer_order(
    n_partitions: int, buffer_size: int
) -> BufferSchedule:
    """Greedy swap-minimizing cover of all partition pairs.

    Starts with the first ``buffer_size`` partitions resident, processes
    every pair currently in the buffer, then repeatedly swaps in the
    partition that unlocks the most unprocessed pairs (evicting the
    resident partition with the fewest remaining pairs).
    """
    if buffer_size < 2:
        raise ValueError(f"buffer_size must be >= 2, got {buffer_size}")
    if n_partitions < buffer_size:
        raise ValueError(
            f"n_partitions ({n_partitions}) must be >= buffer_size"
            f" ({buffer_size})"
        )
    remaining = set(pair_universe(n_partitions))
    resident = set(range(buffer_size))
    order: list[tuple[int, int]] = []

    def process_resident() -> None:
        for i in sorted(resident):
            for j in sorted(resident):
                if i <= j and (i, j) in remaining:
                    order.append((i, j))
                    remaining.discard((i, j))

    process_resident()
    swaps = 0
    while remaining:
        # Pick the outside partition unlocking the most remaining pairs.
        gains: dict[int, int] = {}
        for candidate in range(n_partitions):
            if candidate in resident:
                continue
            gain = sum(
                1
                for other in resident
                if (min(candidate, other), max(candidate, other)) in remaining
            )
            gain += 1 if (candidate, candidate) in remaining else 0
            gains[candidate] = gain
        incoming = max(gains, key=lambda c: (gains[c], -c))
        # Evict the resident partition with the fewest remaining pairs —
        # but never one whose pair with the incoming partition is still
        # unprocessed (evicting it would forfeit the gain and oscillate).
        protected = {
            member
            for member in resident
            if (min(incoming, member), max(incoming, member)) in remaining
        }
        candidates = (resident - protected) or set(resident)
        costs: dict[int, int] = {}
        for member in candidates:
            cost = sum(
                1
                for other in range(n_partitions)
                if other != member
                and (min(member, other), max(member, other)) in remaining
            )
            cost += 1 if (member, member) in remaining else 0
            costs[member] = cost
        outgoing = min(costs, key=lambda c: (costs[c], c))
        resident.discard(outgoing)
        resident.add(incoming)
        swaps += 1
        before = len(remaining)
        process_resident()
        if len(remaining) == before and remaining:
            # Forced progress: co-locate the endpoints of one remaining
            # pair directly (at most two extra swaps).
            i, j = min(remaining)
            for endpoint in (i, j):
                if endpoint not in resident:
                    victim = min(resident - {i, j})
                    resident.discard(victim)
                    resident.add(endpoint)
                    swaps += 1
            process_resident()
    return BufferSchedule(
        order=tuple(order), swaps=swaps, initial_fill=buffer_size
    )


def naive_order_loads(n_partitions: int, buffer_size: int) -> int:
    """Loads of the naive row-major visit order (the baseline COMET beats).

    Visiting pairs (0,0), (0,1) ... row by row reloads the second
    partition of almost every pair.
    """
    if buffer_size < 2:
        raise ValueError(f"buffer_size must be >= 2, got {buffer_size}")
    resident: list[int] = []
    loads = 0
    for i, j in pair_universe(n_partitions):
        for part in (i, j):
            if part not in resident:
                if len(resident) >= buffer_size:
                    # Evict the least-recently-used partition that is not
                    # part of the current pair.
                    for victim in resident:
                        if victim not in (i, j):
                            resident.remove(victim)
                            break
                resident.append(part)
                loads += 1
    return loads


def swap_efficiency(n_partitions: int, buffer_size: int) -> float:
    """Naive loads / greedy loads — the I/O saving of the ordering."""
    greedy = greedy_buffer_order(n_partitions, buffer_size).total_loads
    naive = naive_order_loads(n_partitions, buffer_size)
    return naive / greedy
