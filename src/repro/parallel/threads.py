"""Thread-pool parallel execution of SpMM partitions.

The zero-copy sibling of :mod:`repro.parallel.shared`
(``OMeGaConfig.parallel.backend = ExecBackend.THREADS``): partitions run
on a persistent :class:`concurrent.futures.ThreadPoolExecutor` whose
workers read the CSDB arrays and the dense operand *directly* — no
shared segments, no operand staging, no pickling.  Per-call overhead is
one closure submission per partition.

Why threads help even on GIL builds: the heavy numpy primitives inside
``spmm_rows`` (fancy-index gather, elementwise multiply,
``np.add.reduceat``) release the GIL for the duration of the C loop, so
partition kernels genuinely overlap.  On free-threaded CPython the
workers are fully concurrent.  This mirrors OMeGa §III-B's thread
model directly: one thread per partition over a shared in-memory
matrix, no inter-process transport at all.

Invariants shared with the other backends:

- **Bit-identical output.**  Same blocked/tiled ``spmm_rows`` kernel,
  one contiguous CSDB row range per partition, scattered into disjoint
  output rows — threads write non-overlapping row sets, so no
  synchronization is needed and the result equals serial bit for bit.
- **Simulated time untouched.**  The executor only runs kernels.
- **Observable workers.**  With a :class:`~repro.obs.live.TraceContext`
  the same per-partition span payloads are produced (queue wait, kernel
  wall, scatter wall, rows, nnz) and fed to ``span_sink``; in-process
  execution means payloads never need sibling stream files.
- **Fork safety.**  Thread pools do not survive ``fork()``; a hook
  abandons every pool in forked children so shard hosts start fresh.

Failure semantics differ from the process pool deliberately: a raising
partition propagates its exception directly (there is no crashed
process to tear down, no segments to unlink) and the pool stays usable.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

import numpy as np

from repro.formats.csdb import CSDBMatrix
from repro.obs.live import TraceContext, next_span_uid, partition_span_payload
from repro.parallel.scheduler import ExecutorStats


class ThreadsExecutor:
    """Executes contiguous SpMM partitions on a persistent thread pool.

    Implements the same ``run_partitions`` seam as
    :class:`~repro.parallel.scheduler.SimulatedExecutor` and
    :class:`~repro.parallel.shared.SharedMemoryExecutor`; the engine
    picks one per :class:`~repro.core.config.ParallelConfig`.
    """

    def __init__(self, n_workers: int = 2) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.stats = ExecutorStats()
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False

    # -- pool lifecycle ---------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def started(self) -> bool:
        return self._pool is not None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._closed:
            raise RuntimeError("executor is closed")
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="omega-spmm",
                )
            return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _abandon(self) -> None:
        """Forget the pool without joining it (forked child only).

        Worker threads do not survive ``fork()`` — only the forking
        thread exists in the child — so joining the inherited pool
        would deadlock.  Drop the bookkeeping; the parent still owns
        the real threads.
        """
        self._closed = True
        self._pool = None

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # -- execution --------------------------------------------------------

    def run_partitions(
        self,
        matrix: CSDBMatrix,
        dense: np.ndarray,
        ranges: list[tuple[int, int]],
        output: np.ndarray,
        budget_bytes: int | None = None,
        trace_ctx: TraceContext | None = None,
        span_sink: Callable[[dict[str, Any]], Any] | None = None,
    ) -> None:
        """Execute CSDB row ranges on the thread pool into ``output``.

        ``output`` (original row order, shape ``(n_rows, d)``) receives
        the joined result; rows not covered by any range are zeroed.
        Threads scatter into disjoint row sets of ``output`` directly —
        there is no staging buffer to copy back.

        Raises:
            Exception: whatever a partition kernel raised, re-raised on
                the caller thread.  The pool remains usable.
        """
        call_start = time.perf_counter()
        dense = np.ascontiguousarray(dense, dtype=np.float64)
        ranges = [(int(a), int(b)) for a, b in ranges if b > a]
        output[:] = 0.0
        if not ranges:
            return
        pool = self._ensure_pool()
        # Pre-warm the lazily cached structural arrays on this thread;
        # workers then only read them (no benign-but-wasteful race to
        # build the same cache concurrently).
        nnz_prefix = matrix.nnz_prefix()
        matrix.row_degrees()
        matrix.inv_perm  # property; cached like the others
        enqueued_at = time.monotonic()

        def run_range(row_start: int, row_end: int):
            started_at = time.monotonic()
            kernel_start = time.perf_counter()
            partial = matrix.spmm_rows(
                dense, row_start, row_end, budget_bytes=budget_bytes
            )
            kernel_end = time.perf_counter()
            output[matrix.perm[row_start:row_end]] = partial
            if trace_ctx is None:
                return None
            scatter_end = time.perf_counter()
            return partition_span_payload(
                trace_ctx,
                row_start=row_start,
                row_end=row_end,
                nnz=int(nnz_prefix[row_end] - nnz_prefix[row_start]),
                kernel_wall_s=kernel_end - kernel_start,
                scatter_wall_s=scatter_end - kernel_end,
                queue_wait_s=max(0.0, started_at - enqueued_at),
                uid=next_span_uid(),
            )

        futures = [pool.submit(run_range, a, b) for a, b in ranges]
        self.stats.plans += 1
        self.stats.partitions += len(ranges)
        # Threads read the operands in place: every call "hits".
        self.stats.shared_cache_hits += 1
        self.stats.last_submit_wall_s = time.perf_counter() - call_start
        first: BaseException | None = None
        for future in futures:
            try:
                payload = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                first = first if first is not None else exc
                continue
            if span_sink is not None and payload is not None:
                span_sink(payload)
        self.stats.last_call_wall_s = time.perf_counter() - call_start
        if first is not None:
            raise first


#: Process-wide thread pools, one per worker count.
_THREAD_POOLS: dict[int, ThreadsExecutor] = {}


def get_threads_executor(n_workers: int) -> ThreadsExecutor:
    """Shared thread pool for ``n_workers`` (re-created if closed)."""
    pool = _THREAD_POOLS.get(n_workers)
    if pool is None or pool.closed:
        pool = ThreadsExecutor(n_workers)
        _THREAD_POOLS[n_workers] = pool
    return pool


def shutdown_threads_executors() -> None:
    """Close every process-wide thread pool (tests / interpreter exit)."""
    for pool in list(_THREAD_POOLS.values()):
        pool.close()
    _THREAD_POOLS.clear()


def _abandon_pools_after_fork() -> None:
    for pool in list(_THREAD_POOLS.values()):
        pool._abandon()
    _THREAD_POOLS.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in CI
    os.register_at_fork(after_in_child=_abandon_pools_after_fork)

atexit.register(shutdown_threads_executors)
