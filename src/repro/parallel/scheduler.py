"""Simulated thread pool.

Real work (numpy kernels) executes serially in-process; simulated *time*
advances per logical thread, so a parallel phase's completion time is the
maximum simulated clock (the makespan) rather than the serial wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.memsim.clock import SimClock


@dataclass
class ThreadTask:
    """One unit of simulated-parallel work.

    Attributes:
        thread_id: logical thread executing the task.
        work: callable performing the real computation (may be None for
            cost-only simulation).
        cost_seconds: simulated duration charged to the thread's clock.
    """

    thread_id: int
    cost_seconds: float
    work: Callable[[], None] | None = None


class SimulatedExecutor:
    """Executes :class:`ThreadTask` batches against a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock

    def run(self, tasks: list[ThreadTask]) -> float:
        """Run all tasks; returns the makespan after a barrier.

        Tasks assigned to the same thread are serialized on its clock;
        tasks on different threads overlap.  A barrier synchronizes all
        clocks at the end, modelling the join at the end of a parallel
        SpMM phase.
        """
        for task in tasks:
            if not 0 <= task.thread_id < self.clock.n_threads:
                raise ValueError(
                    f"thread_id {task.thread_id} out of range"
                    f" [0, {self.clock.n_threads})"
                )
            if task.work is not None:
                task.work()
            self.clock.advance(task.thread_id, task.cost_seconds)
        return self.clock.synchronize()
