"""Simulated thread pool.

Real work (numpy kernels) executes serially in-process; simulated *time*
advances per logical thread, so a parallel phase's completion time is the
maximum simulated clock (the makespan) rather than the serial wall time.

Both execution backends implement one structural protocol
(:class:`KernelExecutor`): the engine hands them the CSDB operand, the
dense operand, the contiguous row ranges the allocator produced, and the
output buffer; the backend is free to run those ranges serially
(:class:`SimulatedExecutor`) or on a worker-process pool
(:class:`~repro.parallel.shared.SharedMemoryExecutor`).  Because row
reductions never span a range or chunk boundary, every backend produces
bit-identical output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.formats.csdb import CSDBMatrix
from repro.memsim.clock import SimClock
from repro.obs.live import TraceContext, next_span_uid, partition_span_payload


@runtime_checkable
class KernelExecutor(Protocol):
    """The engine's kernel-dispatch seam (one method, two backends)."""

    def run_partitions(
        self,
        matrix: CSDBMatrix,
        dense: np.ndarray,
        ranges: list[tuple[int, int]],
        output: np.ndarray,
        budget_bytes: int | None = None,
        trace_ctx: TraceContext | None = None,
        span_sink: Callable[[dict[str, Any]], Any] | None = None,
    ) -> None:
        """Compute ``matrix @ dense`` for CSDB row ``ranges`` into ``output``.

        ``output`` has shape ``(n_rows, d)`` in *original* row order and
        is fully overwritten: covered rows receive their products, rows
        outside every range are zeroed.

        With ``trace_ctx`` given, the backend measures each partition
        (kernel wall, scatter wall, rows/nnz) and feeds one span payload
        per partition to ``span_sink`` — the trace-propagation seam both
        backends honour so per-partition telemetry is backend-agnostic.
        """
        ...


@dataclass
class ExecutorStats:
    """Warm-path counters a real executor keeps across calls.

    The engine snapshots these around each dispatched ``multiply()``
    and feeds the deltas into its metrics registry, so cache reuse and
    submission overhead are observable per run (``repro report`` /
    ``repro top``) without the executor knowing about metrics at all.

    Attributes:
        plans: batched plan submissions (one per dispatched call per
            participating worker for process pools; one per call for
            thread pools).
        partitions: partition kernels executed.
        shared_cache_hits: calls that reused a cached shared copy of
            the operand matrix (and the mapped scratch segments).
        shared_cache_misses: calls that had to share (or re-share) the
            matrix.
        invalidations: cached shared copies retired because the
            matrix's content hash changed (see
            :meth:`~repro.formats.csdb.CSDBMatrix.mark_mutated`).
        last_submit_wall_s: wall seconds the last call spent staging
            operands and enqueueing its plan (the per-call overhead the
            warm path amortizes).
        last_call_wall_s: wall seconds of the last full call
            (submission + kernels + join).
    """

    plans: int = 0
    partitions: int = 0
    shared_cache_hits: int = 0
    shared_cache_misses: int = 0
    invalidations: int = 0
    last_submit_wall_s: float = 0.0
    last_call_wall_s: float = 0.0


@dataclass
class ThreadTask:
    """One unit of simulated-parallel work.

    Attributes:
        thread_id: logical thread executing the task.
        work: callable performing the real computation (may be None for
            cost-only simulation).
        cost_seconds: simulated duration charged to the thread's clock.
    """

    thread_id: int
    cost_seconds: float
    work: Callable[[], None] | None = None


class SimulatedExecutor:
    """Serial backend: real kernels in-process, parallel time simulated.

    Executes :class:`ThreadTask` batches against a :class:`SimClock`
    (the historical API) and implements the :class:`KernelExecutor`
    seam by running partition kernels serially in submission order —
    the default, fully deterministic backend.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock

    def run_partitions(
        self,
        matrix: CSDBMatrix,
        dense: np.ndarray,
        ranges: list[tuple[int, int]],
        output: np.ndarray,
        budget_bytes: int | None = None,
        trace_ctx: TraceContext | None = None,
        span_sink: Callable[[dict[str, Any]], Any] | None = None,
    ) -> None:
        """Serial execution of the kernel-dispatch seam."""
        output[:] = 0.0
        nnz_prefix = (
            matrix.nnz_prefix()
            if trace_ctx is not None and span_sink is not None
            else None
        )
        for row_start, row_end in ranges:
            if row_end <= row_start:
                continue
            row_start, row_end = int(row_start), int(row_end)
            kernel_start = time.perf_counter()
            partial = matrix.spmm_rows(
                dense, row_start, row_end, budget_bytes=budget_bytes
            )
            kernel_end = time.perf_counter()
            output[matrix.perm[row_start:row_end]] = partial
            if nnz_prefix is not None:
                scatter_end = time.perf_counter()
                span_sink(
                    partition_span_payload(
                        trace_ctx,
                        row_start=row_start,
                        row_end=row_end,
                        nnz=int(nnz_prefix[row_end] - nnz_prefix[row_start]),
                        kernel_wall_s=kernel_end - kernel_start,
                        scatter_wall_s=scatter_end - kernel_end,
                        uid=next_span_uid(),
                    )
                )

    def run(self, tasks: list[ThreadTask]) -> float:
        """Run all tasks; returns the makespan after a barrier.

        Tasks assigned to the same thread are serialized on its clock;
        tasks on different threads overlap.  A barrier synchronizes all
        clocks at the end, modelling the join at the end of a parallel
        SpMM phase.
        """
        if self.clock is None:
            raise ValueError("SimulatedExecutor.run requires a SimClock")
        for task in tasks:
            if not 0 <= task.thread_id < self.clock.n_threads:
                raise ValueError(
                    f"thread_id {task.thread_id} out of range"
                    f" [0, {self.clock.n_threads})"
                )
            if task.work is not None:
                task.work()
            self.clock.advance(task.thread_id, task.cost_seconds)
        return self.clock.synchronize()
