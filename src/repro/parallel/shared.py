"""Shared-memory parallel execution of SpMM partitions.

This is the real multicore backend behind the engine's kernel-dispatch
seam (``OMeGaConfig.parallel.backend = ExecBackend.SHARED_MEMORY``): the
EaTA partitions that the cost model schedules onto *logical* threads are
executed concurrently by a pool of worker *processes* operating on
zero-copy views of the CSDB arrays (``multiprocessing.shared_memory``
via :meth:`~repro.formats.csdb.CSDBMatrix.to_shared`).

Design invariants:

- **Bit-identical output.**  Workers run exactly the same blocked
  ``spmm_rows`` kernel as the serial path, one contiguous CSDB row range
  per partition, and scatter their partial results into disjoint rows of
  one shared output buffer (``out[perm[rst:red]] = partial``).  Row
  reductions never span a chunk or partition boundary, so the parallel
  result equals the serial result bit for bit.
- **Simulated time is untouched.**  The executor only runs kernels; the
  engine charges Eq. 2 costs to the per-thread :class:`SimClock` exactly
  as under the simulated backend.
- **Warm path.**  The shared copy of each operand matrix and the mapped
  dense/output scratch segments persist across calls, keyed by matrix
  identity *and* content hash (see
  :meth:`~repro.formats.csdb.CSDBMatrix.content_hash`): the second and
  every later ``multiply()`` of a Chebyshev run pays only the dense
  copy and one batched plan enqueue per worker.  In-place mutation is
  announced via :meth:`~repro.formats.csdb.CSDBMatrix.mark_mutated`,
  which changes the content hash and makes the executor retire and
  re-share the matrix on its next call.
- **Batched submission.**  Each call enqueues *one* plan message per
  worker carrying that worker's whole share of the partition plan
  (largest-nnz-first assignment onto the least-loaded worker) and
  receives one coalesced ack, instead of a queue round-trip per
  partition.
- **Crash safety.**  A worker death or in-worker exception surfaces as a
  typed :class:`WorkerCrashError`; the pool tears down and every shared
  segment it created is unlinked before the error propagates.
- **Fork safety.**  A forked child (e.g. a shard host) inherits the
  parent's executors but must never shut down the parent's workers or
  unlink its segments: an ``os.register_at_fork`` hook abandons every
  executor in the child (bookkeeping cleared, nothing touched), so
  child-side ``close()``/``__del__`` are no-ops and the next
  :func:`get_shared_executor` in the child builds a fresh pool.
- **Observable workers.**  When the engine passes a
  :class:`~repro.obs.live.TraceContext`, each worker measures its
  partitions (queue wait, kernel wall, scatter wall, rows, nnz) and
  ships the span payloads back with its coalesced ack — on the partial
  and error acks too, so partition telemetry survives the
  :class:`WorkerCrashError` path.  With a live stream attached, workers
  additionally append their spans to sibling stream files
  (``<stream>.w<pid>``) that :func:`~repro.obs.live.merge_streams`
  stitches back together even if the coordinator never gets the ack.

The pool is lazy (no processes are spawned until the first dispatched
kernel) and process-wide pools are shared across engines via
:func:`get_shared_executor`, so a ProNE pipeline's dozens of SpMM calls
reuse both the workers and the shared copy of each operand matrix.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as queue_module
import secrets
import time
import weakref
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from repro.formats.csdb import (
    CSDBMatrix,
    SharedArraySpec,
    SharedCSDB,
    SharedCSDBHandle,
    attach_shared_array,
    unlink_segment,
)
from repro.obs.live import (
    TelemetryStream,
    TraceContext,
    next_span_uid,
    partition_span_payload,
)
from repro.parallel.scheduler import ExecutorStats

#: Default per-call completion deadline; a pool that produces neither
#: results nor progress for this long is declared crashed.
DEFAULT_CALL_TIMEOUT_S = 300.0


class WorkerCrashError(RuntimeError):
    """A shared-memory worker died or failed; the pool was torn down.

    After this error the executor is closed: its shared segments are
    unlinked and its workers terminated.  A fresh executor (or the next
    :func:`get_shared_executor` call) starts a new pool.
    """


def _mp_context():
    """Fork where available (cheap workers); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _worker_stream(
    streams: dict[str, "TelemetryStream | None"], ctx: TraceContext
) -> "TelemetryStream | None":
    """This worker's sibling stream file for a live run (cached).

    Telemetry must never take a kernel down: a stream that cannot be
    opened is remembered as ``None`` and silently skipped.
    """
    if ctx.live_path is None:
        return None
    path = f"{ctx.live_path}.w{os.getpid()}"
    if path not in streams:
        try:
            streams[path] = TelemetryStream(
                path, flush_every=1, role="worker", trace_id=ctx.trace_id
            )
        except OSError:
            streams[path] = None
    return streams[path]


def _worker_main(jobs, results) -> None:
    """Worker loop: attach shared operands once, run whole plans forever.

    Each worker owns a private job queue and receives *plans* — one
    message per ``run_partitions`` call carrying every partition
    assigned to this worker (plain tuples, picklable):

    - ``("plan", call_id, slot, handle, dense_spec, out_spec, tasks,
      budget_bytes, retired, ctx, enqueued_at)`` — run the plan's tasks
      in order.  ``tasks`` is a tuple of ``(job_id, row_start, row_end,
      crash)`` sorted by ``job_id``; ``crash`` marks injected
      hard-exits (crash-safety tests).  ``ctx`` is a
      :class:`~repro.obs.live.TraceContext` or None; ``enqueued_at`` is
      the coordinator's ``time.monotonic()`` at submission, comparable
      across forked processes on Linux.  ``retired`` names segments to
      drop — every plan carries it (empty plans included), so all
      workers release retired attachments deterministically.
    - ``None`` — shut down.

    One coalesced ack per plan, with the span payloads of every
    completed partition riding along:

    - ``("ok", call_id, slot, n_done, payloads)`` — all tasks done;
    - ``("partial", call_id, slot, n_done, payloads)`` — an injected
      crash task was reached after ``n_done`` completed partitions; the
      ack (and any live-stream appends) is flushed, then the worker
      hard-exits;
    - ``("error", call_id, slot, message, payloads)`` — a task raised;
      ``payloads`` includes the failing partition's error-status span.
    """
    matrices: dict[str, CSDBMatrix] = {}
    scratch: dict[str, tuple] = {}  # name -> (ndarray view, segment)
    streams: dict[str, TelemetryStream | None] = {}

    def drop(names) -> None:
        for name in names:
            matrices.pop(name, None)
            scratch.pop(name, None)

    while True:
        plan = jobs.get()
        if plan is None:
            return
        (
            _, call_id, slot, handle, dense_spec, out_spec,
            tasks, budget_bytes, retired, ctx, enqueued_at,
        ) = plan
        drop(retired)
        payloads: list = []
        n_done = 0
        job_id = row_start = row_end = 0
        queue_wait_s = kernel_wall_s = scatter_wall_s = 0.0
        nnz = 0
        dense = out = None
        try:
            if tasks:
                matrix = matrices.get(handle.key)
                if matrix is None:
                    matrix = CSDBMatrix.from_shared(handle)
                    matrices[handle.key] = matrix
                if dense_spec.name not in scratch:
                    scratch[dense_spec.name] = attach_shared_array(dense_spec)
                if out_spec.name not in scratch:
                    scratch[out_spec.name] = attach_shared_array(out_spec)
                # Re-view per plan: the segment is cached, but its
                # logical shape can change between calls (d varies
                # across pipeline stages while the byte capacity stays
                # sufficient).
                dense_seg = scratch[dense_spec.name][1]
                out_seg = scratch[out_spec.name][1]
                dense = np.ndarray(
                    dense_spec.shape, dtype=np.dtype(dense_spec.dtype),
                    buffer=dense_seg.buf,
                )
                out = np.ndarray(
                    out_spec.shape, dtype=np.dtype(out_spec.dtype),
                    buffer=out_seg.buf,
                )
            for job_id, row_start, row_end, crash in tasks:
                if crash:
                    # Flush the partial ack (the feeder thread is async
                    # and os._exit would drop it), then die hard: the
                    # crash task itself never completes.
                    dense = out = None
                    results.put(
                        ("partial", call_id, slot, n_done, tuple(payloads))
                    )
                    results.close()
                    results.join_thread()
                    os._exit(17)
                started_at = time.monotonic()
                queue_wait_s = max(0.0, started_at - enqueued_at)
                kernel_wall_s = scatter_wall_s = 0.0
                nnz = 0
                if ctx is not None:
                    prefix = matrix.nnz_prefix()
                    nnz = int(prefix[row_end] - prefix[row_start])
                kernel_start = time.perf_counter()
                partial = matrix.spmm_rows(
                    dense, row_start, row_end, budget_bytes=budget_bytes
                )
                kernel_wall_s = time.perf_counter() - kernel_start
                scatter_start = time.perf_counter()
                out[matrix.perm[row_start:row_end]] = partial
                scatter_wall_s = time.perf_counter() - scatter_start
                del partial
                if ctx is not None:
                    payload = partition_span_payload(
                        ctx,
                        row_start=row_start,
                        row_end=row_end,
                        nnz=nnz,
                        kernel_wall_s=kernel_wall_s,
                        scatter_wall_s=scatter_wall_s,
                        queue_wait_s=queue_wait_s,
                        uid=next_span_uid(),
                    )
                    stream = _worker_stream(streams, ctx)
                    if stream is not None:
                        stream.emit(payload)
                    payloads.append(payload)
                n_done += 1
            dense = out = None
            results.put(("ok", call_id, slot, n_done, tuple(payloads)))
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            try:
                dense = out = None
                if ctx is not None:
                    payload = partition_span_payload(
                        ctx,
                        row_start=row_start,
                        row_end=row_end,
                        nnz=nnz,
                        kernel_wall_s=kernel_wall_s,
                        scatter_wall_s=scatter_wall_s,
                        queue_wait_s=queue_wait_s,
                        status="error",
                        uid=next_span_uid(),
                    )
                    stream = _worker_stream(streams, ctx)
                    if stream is not None:
                        stream.emit(payload)
                    payloads.append(payload)
                results.put(
                    (
                        "error",
                        call_id,
                        slot,
                        f"partition {job_id}: {type(exc).__name__}: {exc}",
                        tuple(payloads),
                    )
                )
            except Exception:
                os._exit(1)


class _ScratchSegment:
    """A reusable named shared buffer owned by the executor."""

    def __init__(self, name: str, nbytes: int) -> None:
        self.segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(nbytes, 1)
        )
        self.capacity = max(nbytes, 1)

    def view(self, shape: tuple[int, ...], dtype: str = "float64") -> np.ndarray:
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self.segment.buf)

    def release(self) -> None:
        name = self.segment.name
        try:
            self.segment.close()
        except BufferError:  # pragma: no cover - view still exported
            pass
        unlink_segment(name)


class SharedMemoryExecutor:
    """Executes contiguous SpMM partitions on a worker-process pool.

    Implements the same ``run_partitions`` seam as the serial
    :class:`~repro.parallel.scheduler.SimulatedExecutor`; the engine
    picks one per :class:`~repro.core.config.ParallelConfig`.
    """

    def __init__(
        self,
        n_workers: int = 2,
        call_timeout_s: float = DEFAULT_CALL_TIMEOUT_S,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.call_timeout_s = call_timeout_s
        self.stats = ExecutorStats()
        self._ctx = _mp_context()
        self._prefix = f"omega-{os.getpid()}-{secrets.token_hex(4)}"
        self._workers: list = []
        self._job_queues: list = []
        self._results = None
        self._call_seq = 0
        self._scratch_seq = 0
        # id(matrix) -> (weakref to matrix, owner-side SharedCSDB,
        #                content hash at share time)
        self._matrices: dict[int, tuple] = {}
        self._scratch: dict[str, _ScratchSegment] = {}
        self._retired: list[str] = []
        self._closed = False
        _ALL_EXECUTORS.add(self)

    # -- pool lifecycle ---------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def started(self) -> bool:
        return bool(self._workers)

    def _ensure_workers(self) -> None:
        if self._closed:
            raise WorkerCrashError("executor is closed")
        if self._workers:
            return
        self._job_queues = [self._ctx.Queue() for _ in range(self.n_workers)]
        self._results = self._ctx.Queue()
        for slot in range(self.n_workers):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self._job_queues[slot], self._results),
                daemon=True,
            )
            proc.start()
            self._workers.append(proc)

    def close(self) -> None:
        """Shut down workers and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._workers:
            for jobs in self._job_queues:
                try:
                    jobs.put(None)
                except Exception:
                    break
            for proc in self._workers:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5.0)
        self._release_shared()
        self._workers = []
        self._job_queues = []

    def _abandon(self) -> None:
        """Forget workers and segments without touching either.

        For forked children only: the parent owns the worker processes
        and the shared segments, so the child must not join, terminate,
        close, or unlink anything — it just drops its inherited
        bookkeeping so ``close()``/``__del__`` become no-ops.
        """
        self._closed = True
        self._workers = []
        self._job_queues = []
        self._results = None
        self._matrices = {}
        self._scratch = {}
        self._retired = []

    def _kill_workers(self) -> None:
        for proc in self._workers:
            if proc.is_alive():
                proc.terminate()
        for proc in self._workers:
            proc.join(timeout=5.0)
        self._workers = []
        self._job_queues = []

    def _release_shared(self) -> None:
        """Unlink every owned segment, even when some releases fail.

        Teardown often runs on an already-failing path (a worker crash,
        a double fault); one segment refusing to close must not leave
        the rest leaked in ``/dev/shm``.  Every release is attempted,
        the bookkeeping is cleared regardless, and the first failure is
        re-raised once the sweep is complete.
        """
        first: BaseException | None = None
        for entry in self._matrices.values():
            try:
                entry[1].close()
            except BaseException as exc:  # noqa: BLE001 - sweep all
                first = first if first is not None else exc
        self._matrices = {}
        for seg in self._scratch.values():
            try:
                seg.release()
            except BaseException as exc:  # noqa: BLE001 - sweep all
                first = first if first is not None else exc
        self._scratch = {}
        for name in self._retired:
            try:
                unlink_segment(name)
            except BaseException as exc:  # noqa: BLE001 - sweep all
                first = first if first is not None else exc
        self._retired = []
        if first is not None:
            raise first

    def _fail(self, message: str) -> WorkerCrashError:
        """Tear the pool down after a failure; returns the typed error."""
        self._closed = True
        self._kill_workers()
        try:
            self._release_shared()
        except BaseException:  # noqa: BLE001 - already failing; swept
            pass
        return WorkerCrashError(message)

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # -- operand staging --------------------------------------------------

    def _shared_matrix(self, matrix: CSDBMatrix) -> SharedCSDBHandle:
        """Owner-side shared copy of a matrix, cached across calls.

        Cache key is the live instance (``id`` guarded by a weakref) and
        the value recorded at share time includes the content hash:

        - same instance, same hash → reuse the existing segments (the
          warm path — no copying, workers keep their attachments);
        - same instance, changed hash (``mark_mutated`` after in-place
          edits) → retire the stale segments and re-share;
        - instance died → segments retired on the next call.

        Mutating array contents *without* calling ``mark_mutated`` is
        not detected — hashing every call would defeat the warm path —
        and is documented as unsupported.
        """
        for key, entry in list(self._matrices.items()):
            if entry[0]() is None:
                self._retired.extend(s.name for s in entry[1].handle.specs)
                entry[1].close()
                del self._matrices[key]
        entry = self._matrices.get(id(matrix))
        if entry is not None:
            if len(entry) > 2 and entry[2] != matrix.content_hash():
                self._retired.extend(s.name for s in entry[1].handle.specs)
                entry[1].close()
                del self._matrices[id(matrix)]
                self.stats.invalidations += 1
            else:
                self.stats.shared_cache_hits += 1
                return entry[1].handle
        self.stats.shared_cache_misses += 1
        shared_mat = matrix.to_shared(
            prefix=f"{self._prefix}-m{len(self._matrices)}-"
            f"{secrets.token_hex(2)}"
        )
        self._matrices[id(matrix)] = (
            weakref.ref(matrix), shared_mat, matrix.content_hash()
        )
        return shared_mat.handle

    def _scratch_spec(
        self, tag: str, shape: tuple[int, ...]
    ) -> SharedArraySpec:
        """Reusable scratch buffer spec, regrown when too small."""
        nbytes = int(np.prod(shape, dtype=np.int64)) * 8
        current = self._scratch.get(tag)
        if current is not None and current.capacity < nbytes:
            self._retired.append(current.segment.name)
            current.release()
            current = None
            del self._scratch[tag]
        if current is None:
            self._scratch_seq += 1
            current = _ScratchSegment(
                f"{self._prefix}-{tag}-{self._scratch_seq}", nbytes
            )
            self._scratch[tag] = current
        return SharedArraySpec(
            name=current.segment.name, shape=tuple(shape), dtype="float64"
        )

    # -- execution --------------------------------------------------------

    def run_partitions(
        self,
        matrix: CSDBMatrix,
        dense: np.ndarray,
        ranges: list[tuple[int, int]],
        output: np.ndarray,
        budget_bytes: int | None = None,
        trace_ctx: TraceContext | None = None,
        span_sink: Callable[[dict[str, Any]], Any] | None = None,
        _inject_crash: bool | int = False,
    ) -> None:
        """Execute CSDB row ranges on the pool, scattering into ``output``.

        ``output`` (original row order, shape ``(n_rows, d)``) receives
        the joined result; rows not covered by any range are zeroed.

        Submission is batched: partitions are assigned largest-nnz-first
        onto the least-loaded worker and each worker receives *one* plan
        message (and sends one coalesced ack), so per-call queue traffic
        is O(workers) instead of O(partitions).

        With ``trace_ctx`` set, workers measure each partition and ship
        the span payloads back with their acks; payloads are fed to
        ``span_sink`` (typically ``SpanTracer.attach``) as acks arrive —
        including every payload received before a
        :class:`WorkerCrashError` is raised, so partial telemetry
        survives a crashed call.

        Raises:
            WorkerCrashError: a worker died, failed, or the call timed
                out; the pool is torn down and its segments released.
        """
        call_start = time.perf_counter()
        if self._closed:
            raise WorkerCrashError("executor is closed")
        dense = np.ascontiguousarray(dense, dtype=np.float64)
        ranges = [(int(a), int(b)) for a, b in ranges if b > a]
        if not ranges:
            output[:] = 0.0
            return
        self._ensure_workers()
        handle = self._shared_matrix(matrix)
        dense_spec = self._scratch_spec("dense", dense.shape)
        out_spec = self._scratch_spec("out", output.shape)
        dense_view = self._scratch["dense"].view(dense.shape)
        dense_view[:] = dense
        del dense_view
        out_view = self._scratch["out"].view(output.shape)
        out_view[:] = 0.0
        del out_view
        retired = tuple(self._retired)
        self._retired = []

        # ``_inject_crash=True`` crashes every partition; an integer N
        # lets partitions 0..N-1 complete first, exercising the
        # partial-telemetry crash path (payloads for completed
        # partitions still arrive).
        crash_from: int | None = None
        if _inject_crash:
            crash_from = 0 if _inject_crash is True else int(_inject_crash)

        self._call_seq += 1
        call_id = self._call_seq

        # LPT assignment: largest partition (by nnz) onto the least
        # loaded worker; deterministic (stable sort, lowest slot wins
        # ties).  Each worker runs its tasks in job-id order, so with
        # injected crashes every real partition in a plan precedes the
        # plan's first crash task and its payload is flushed with the
        # partial ack.
        prefix = matrix.nnz_prefix()
        jobs = [
            (
                job_id,
                row_start,
                row_end,
                crash_from is not None and job_id >= crash_from,
                int(prefix[row_end] - prefix[row_start]),
            )
            for job_id, (row_start, row_end) in enumerate(ranges)
        ]
        assignment: list[list[tuple]] = [[] for _ in self._workers]
        loads = [0] * len(self._workers)
        for job in sorted(jobs, key=lambda j: -j[4]):
            slot = min(range(len(loads)), key=loads.__getitem__)
            assignment[slot].append(job[:4])
            loads[slot] += max(job[4], 1)
        enqueued_at = time.monotonic()
        # Every worker gets a plan — empty ones included, so retired
        # segment drops reach all workers deterministically.
        for slot, tasks in enumerate(assignment):
            tasks.sort(key=lambda t: t[0])
            self._job_queues[slot].put(
                (
                    "plan",
                    call_id,
                    slot,
                    handle,
                    dense_spec,
                    out_spec,
                    tuple(tasks),
                    budget_bytes,
                    retired,
                    trace_ctx,
                    enqueued_at,
                )
            )
        self.stats.plans += len(self._workers)
        self.stats.partitions += len(ranges)
        self.stats.last_submit_wall_s = time.perf_counter() - call_start
        self._await(call_id, len(self._workers), span_sink)
        out_view = self._scratch["out"].view(output.shape)
        np.copyto(output, out_view)
        del out_view
        self.stats.last_call_wall_s = time.perf_counter() - call_start

    def _drain_payloads(
        self,
        call_id: int,
        span_sink: Callable[[dict[str, Any]], Any] | None,
    ) -> None:
        """Best-effort sink of span payloads still queued at failure.

        Called just before raising :class:`WorkerCrashError`: acks that
        arrived between the last blocking get and the liveness check
        still carry telemetry worth keeping.  A short timeout covers
        acks a dying worker flushed into the pipe but the feeder had
        not yet made visible.
        """
        if span_sink is None:
            return
        while True:
            try:
                ack = self._results.get(timeout=0.1)
            except queue_module.Empty:
                return
            if ack[1] == call_id:
                for payload in ack[-1]:
                    if payload is not None:
                        span_sink(payload)

    def _await(
        self,
        call_id: int,
        n_plans: int,
        span_sink: Callable[[dict[str, Any]], Any] | None = None,
    ) -> None:
        """Barrier: collect one ack per plan, watching worker liveness.

        Span payloads riding on the acks are fed to ``span_sink``
        immediately — before any failure is raised, so the coordinator
        trace keeps every partition that completed.  A ``partial`` ack
        marks the call crashed but the barrier keeps collecting, so the
        payloads of every surviving plan land in the sink before the
        :class:`WorkerCrashError` propagates.
        """
        done = 0
        crash_msg: str | None = None
        deadline = time.monotonic() + self.call_timeout_s
        while done < n_plans:
            try:
                ack = self._results.get(timeout=0.1)
            except queue_module.Empty:
                dead = [p for p in self._workers if not p.is_alive()]
                if dead:
                    self._drain_payloads(call_id, span_sink)
                    codes = sorted({p.exitcode for p in dead})
                    raise self._fail(
                        crash_msg
                        or f"{len(dead)} shared-memory worker(s) died"
                        f" (exit codes {codes}) with"
                        f" {n_plans - done} plan(s) outstanding"
                    )
                if time.monotonic() > deadline:
                    self._drain_payloads(call_id, span_sink)
                    raise self._fail(
                        f"shared-memory call timed out after"
                        f" {self.call_timeout_s:.0f}s"
                        f" ({n_plans - done} plan(s) outstanding)"
                    )
                continue
            if ack[1] != call_id:
                continue  # stale ack from an abandoned call
            if span_sink is not None:
                for payload in ack[-1]:
                    if payload is not None:
                        span_sink(payload)
            if ack[0] == "error":
                raise self._fail(
                    f"shared-memory worker failed on {ack[3]}"
                )
            if ack[0] == "partial":
                crash_msg = (
                    f"shared-memory worker (slot {ack[2]}) died mid-plan"
                    f" ({ack[3]} partition(s) completed first)"
                )
            done += 1
        if crash_msg is not None:
            raise self._fail(crash_msg)


#: Process-wide executor pools, one per worker count.
_POOLS: dict[int, SharedMemoryExecutor] = {}

#: Every live executor (pooled or direct), for the fork hook.
_ALL_EXECUTORS: "weakref.WeakSet[SharedMemoryExecutor]" = weakref.WeakSet()


def get_shared_executor(n_workers: int) -> SharedMemoryExecutor:
    """Shared pool for ``n_workers`` (re-created if a crash closed it)."""
    pool = _POOLS.get(n_workers)
    if pool is None or pool.closed:
        pool = SharedMemoryExecutor(n_workers)
        _POOLS[n_workers] = pool
    return pool


def shutdown_shared_executors() -> None:
    """Close every process-wide pool (tests / interpreter exit).

    Idempotent; also registered with :mod:`atexit`, so leaked worker
    processes and shared segments are reclaimed even when callers never
    shut down explicitly.
    """
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


#: Backwards-compatible alias (pre-warm-path name).
close_shared_executors = shutdown_shared_executors


def _abandon_executors_after_fork() -> None:
    """Fork hook: a child must not touch the parent's pools.

    Clears the pool registry and abandons every inherited executor so
    child-side ``close()``/``atexit``/``__del__`` cannot shut down the
    parent's workers or unlink its segments.  The child's first
    :func:`get_shared_executor` call builds a fresh pool.
    """
    for pool in list(_ALL_EXECUTORS):
        pool._abandon()
    _POOLS.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in CI
    os.register_at_fork(after_in_child=_abandon_executors_after_fork)

atexit.register(shutdown_shared_executors)
