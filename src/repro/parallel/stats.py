"""Tail-latency statistics over per-thread completion times (Fig. 13)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ThreadStats:
    """Distribution summary of per-thread completion times.

    All values are in the same unit as the input times (seconds for the
    simulated clocks).  ``p95``/``p99`` are the paper's tail-latency
    metrics; ``std`` is the spread it quotes for WaTA (1.52) vs EaTA
    (0.78) on soc-LiveJournal.
    """

    n_threads: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def makespan(self) -> float:
        """Completion time of the whole parallel phase."""
        return self.maximum

    @property
    def imbalance(self) -> float:
        """Makespan / mean — 1.0 is perfectly balanced."""
        if self.mean == 0.0:
            return 1.0
        return self.maximum / self.mean

    @property
    def coefficient_of_variation(self) -> float:
        """std / mean, a scale-free imbalance measure."""
        if self.mean == 0.0:
            return 0.0
        return self.std / self.mean


def summarize_thread_times(times: np.ndarray) -> ThreadStats:
    """Summarize a vector of per-thread completion times."""
    times = np.asarray(times, dtype=np.float64)
    if times.ndim != 1 or len(times) == 0:
        raise ValueError("times must be a non-empty 1-D array")
    return ThreadStats(
        n_threads=len(times),
        mean=float(times.mean()),
        std=float(times.std()),
        minimum=float(times.min()),
        maximum=float(times.max()),
        p50=float(np.percentile(times, 50)),
        p95=float(np.percentile(times, 95)),
        p99=float(np.percentile(times, 99)),
    )
