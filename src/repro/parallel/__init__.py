"""Simulated parallel execution: thread pool and tail-latency statistics."""

from repro.parallel.scheduler import SimulatedExecutor, ThreadTask
from repro.parallel.stats import ThreadStats, summarize_thread_times

__all__ = [
    "SimulatedExecutor",
    "ThreadStats",
    "ThreadTask",
    "summarize_thread_times",
]
