"""Parallel execution: simulated and shared-memory backends, thread stats.

Two interchangeable backends implement the :class:`KernelExecutor`
protocol behind the engine's kernel-dispatch seam:

- :class:`SimulatedExecutor` — serial in-process kernels, simulated
  per-thread clocks (the deterministic default);
- :class:`SharedMemoryExecutor` — EaTA partitions executed concurrently
  on worker processes over zero-copy shared-memory views of the CSDB
  arrays, bit-identical to the serial result.
"""

from repro.parallel.scheduler import (
    KernelExecutor,
    SimulatedExecutor,
    ThreadTask,
)
from repro.parallel.shared import (
    SharedMemoryExecutor,
    WorkerCrashError,
    close_shared_executors,
    get_shared_executor,
)
from repro.parallel.stats import ThreadStats, summarize_thread_times

__all__ = [
    "KernelExecutor",
    "SharedMemoryExecutor",
    "SimulatedExecutor",
    "ThreadStats",
    "ThreadTask",
    "WorkerCrashError",
    "close_shared_executors",
    "get_shared_executor",
    "summarize_thread_times",
]
