"""Parallel execution: simulated, shared-memory, and thread backends.

Three interchangeable backends implement the :class:`KernelExecutor`
protocol behind the engine's kernel-dispatch seam:

- :class:`SimulatedExecutor` — serial in-process kernels, simulated
  per-thread clocks (the deterministic default);
- :class:`SharedMemoryExecutor` — EaTA partitions executed concurrently
  on worker processes over zero-copy shared-memory views of the CSDB
  arrays, with a persistent warm segment cache and batched plan
  submission, bit-identical to the serial result;
- :class:`ThreadsExecutor` — partitions on a persistent in-process
  thread pool, zero segment copies (the numpy kernels release the
  GIL), bit-identical to the serial result.

Real backends expose :class:`ExecutorStats` warm-path counters that the
engine folds into its metrics registry.
"""

from repro.parallel.scheduler import (
    ExecutorStats,
    KernelExecutor,
    SimulatedExecutor,
    ThreadTask,
)
from repro.parallel.shared import (
    SharedMemoryExecutor,
    WorkerCrashError,
    close_shared_executors,
    get_shared_executor,
    shutdown_shared_executors,
)
from repro.parallel.stats import ThreadStats, summarize_thread_times
from repro.parallel.threads import (
    ThreadsExecutor,
    get_threads_executor,
    shutdown_threads_executors,
)

__all__ = [
    "ExecutorStats",
    "KernelExecutor",
    "SharedMemoryExecutor",
    "SimulatedExecutor",
    "ThreadStats",
    "ThreadTask",
    "ThreadsExecutor",
    "WorkerCrashError",
    "close_shared_executors",
    "get_shared_executor",
    "get_threads_executor",
    "shutdown_shared_executors",
    "shutdown_threads_executors",
    "summarize_thread_times",
]
