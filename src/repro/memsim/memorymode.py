"""Memory-Mode PM: DRAM as a direct-mapped write-back cache (§II-B).

The paper runs PM in *App-directed* mode and argues it beats the
transparent *Memory Mode*, where DRAM becomes a direct-mapped, 4 KiB-block
write-back cache in front of PM that the application cannot steer.  This
module provides the substrate to test that claim:

- :class:`DirectMappedCache` — an exact block-level direct-mapped cache
  simulator driven by real address traces (the engine feeds it actual
  column-access streams);
- :class:`MemoryModeModel` — converts a hit rate into effective access
  time: hits run at DRAM speed, misses pay the PM read *plus* the 4 KiB
  block fill (and a dirty-eviction write-back), which is exactly why
  scattered graph workloads behave poorly under Memory Mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memsim.costmodel import CostModel
from repro.memsim.devices import (
    AccessPattern,
    DeviceSpec,
    Locality,
    Operation,
)


class DirectMappedCache:
    """Exact direct-mapped cache simulation over block addresses.

    Args:
        capacity_bytes: total cache capacity (the DRAM size in Memory
            Mode).
        block_bytes: cache block size (4 KiB for Optane Memory Mode).
    """

    def __init__(self, capacity_bytes: int, block_bytes: int = 4096) -> None:
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be > 0, got {capacity_bytes}"
            )
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be > 0, got {block_bytes}")
        self.block_bytes = block_bytes
        self.n_sets = max(1, capacity_bytes // block_bytes)
        self._tags = np.full(self.n_sets, -1, dtype=np.int64)
        self.hits = 0
        self.misses = 0

    def access_addresses(self, byte_addresses: np.ndarray) -> float:
        """Run a trace of byte addresses; returns this trace's hit rate."""
        addresses = np.asarray(byte_addresses, dtype=np.int64)
        if np.any(addresses < 0):
            raise ValueError("addresses must be non-negative")
        blocks = addresses // self.block_bytes
        sets = blocks % self.n_sets
        hits = 0
        tags = self._tags
        for block, index in zip(blocks, sets):
            if tags[index] == block:
                hits += 1
            else:
                tags[index] = block
        misses = len(blocks) - hits
        self.hits += hits
        self.misses += misses
        return hits / len(blocks) if len(blocks) else 0.0

    @property
    def hit_rate(self) -> float:
        """Cumulative hit rate across all traces."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Invalidate the cache and zero the counters."""
        self._tags[:] = -1
        self.hits = 0
        self.misses = 0


@dataclass
class MemoryModeModel:
    """Effective access time under Memory Mode, given a measured hit rate.

    Attributes:
        dram: the DRAM device acting as the cache.
        pm: the PM device behind it.
        cost_model: shared cost model.
        block_bytes: cache block (fill granularity), 4 KiB on Optane.
        dirty_fraction: fraction of evictions that write back a dirty
            block.
    """

    dram: DeviceSpec
    pm: DeviceSpec
    cost_model: CostModel
    block_bytes: int = 4096
    dirty_fraction: float = 0.3

    def access_time(
        self,
        nbytes: float,
        hit_rate: float,
        z_entropy: float,
        threads_sharing: int = 1,
    ) -> float:
        """Seconds to serve ``nbytes`` of demand traffic.

        Hits run at DRAM scattered bandwidth.  Each missed access fills a
        whole 4 KiB block from PM (massive amplification for 8-256 B
        demand reads) and may evict a dirty block back to PM.
        """
        if not 0.0 <= hit_rate <= 1.0:
            raise ValueError(f"hit_rate must be in [0, 1], got {hit_rate}")
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        hit_bytes = nbytes * hit_rate
        miss_bytes = nbytes - hit_bytes
        seconds = 0.0
        if hit_bytes:
            seconds += self.cost_model.entropy_access_time(
                self.dram, Locality.LOCAL, hit_bytes, z_entropy, threads_sharing
            )
        if miss_bytes:
            # Demand bytes per miss ~ one scattered access (256 B burst);
            # each miss transfers a full block from PM, plus write-backs.
            amplification = self.block_bytes / 256.0
            fill_bytes = miss_bytes * amplification
            seconds += self.cost_model.access_time(
                self.pm,
                Operation.READ,
                AccessPattern.RANDOM,
                Locality.LOCAL,
                fill_bytes,
                threads_sharing,
            )
            seconds += self.cost_model.access_time(
                self.pm,
                Operation.WRITE,
                AccessPattern.RANDOM,
                Locality.LOCAL,
                fill_bytes * self.dirty_fraction,
                threads_sharing,
            )
        return seconds


def sample_dense_access_addresses(
    col_list: np.ndarray,
    dense_cols: int,
    itemsize: int = 8,
    max_samples: int = 200_000,
    seed: int = 0,
) -> np.ndarray:
    """Byte addresses of the dense-row gathers of an SpMM workload.

    Each column id in ``col_list`` reads one row of B (``dense_cols *
    itemsize`` bytes at ``col * row_bytes``).  For long workloads a
    uniform subsample keeps the cache simulation fast while preserving
    the reuse distribution.
    """
    cols = np.asarray(col_list, dtype=np.int64)
    if len(cols) > max_samples:
        rng = np.random.default_rng(seed)
        start = rng.integers(0, len(cols) - max_samples + 1)
        cols = cols[start : start + max_samples]
    return cols * (dense_cols * itemsize)
