"""App-direct PM persistence: flush/fence costs and crash-safe commits.

§II-B: in App-directed mode applications access PM with loads/stores
"while employing ordering facilities to enforce consistency and ensure
crash recovery".  This module supplies those facilities for the
simulation substrate:

- :class:`PersistenceDomain` — charges ``CLWB``-style cache-line
  write-backs and ``SFENCE`` ordering points, and tracks which bytes are
  durable vs merely stored;
- :class:`ShadowCommit` — the classic crash-consistent double-buffer
  protocol (write shadow → flush → fence → flip a flushed commit record),
  used by :class:`CheckpointedEmbedder` to persist embeddings so a crash
  mid-checkpoint always recovers the previous complete version.

Crashes are *injected* (``crash=True`` aborts before the commit flip), so
tests can verify recovery semantics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memsim.costmodel import CostModel
from repro.memsim.devices import (
    AccessPattern,
    DeviceSpec,
    Locality,
    Operation,
)

#: Cache-line granularity of CLWB write-backs.
CACHE_LINE_BYTES = 64
#: Cost of one SFENCE ordering point, seconds (~tens of ns).
FENCE_SECONDS = 30e-9


@dataclass
class PersistenceDomain:
    """Durability accounting for one PM device.

    Stores are fast (cache-resident) until flushed; ``flush`` charges the
    PM write path per cache line, ``fence`` orders them.  ``sim_seconds``
    accumulates the persistence overhead the paper's App-direct mode
    pays and Memory Mode does not expose to the application.
    """

    device: DeviceSpec
    cost_model: CostModel = field(default_factory=CostModel)
    sim_seconds: float = 0.0
    stored_bytes: float = 0.0
    durable_bytes: float = 0.0
    fences: int = 0

    def store(self, nbytes: float) -> None:
        """Buffer ``nbytes`` of stores (not yet durable)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.stored_bytes += nbytes

    def flush(self) -> float:
        """CLWB all pending stores to the PM media; returns the cost."""
        pending = self.stored_bytes
        if pending == 0.0:
            return 0.0
        lines = -(-pending // CACHE_LINE_BYTES)
        seconds = self.cost_model.access_time(
            self.device,
            Operation.WRITE,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            lines * CACHE_LINE_BYTES,
        )
        self.sim_seconds += seconds
        self.durable_bytes += pending
        self.stored_bytes = 0.0
        return seconds

    def fence(self) -> float:
        """SFENCE: order preceding flushes; returns the cost."""
        self.fences += 1
        self.sim_seconds += FENCE_SECONDS
        return FENCE_SECONDS

    @property
    def all_durable(self) -> bool:
        """True when no stores are pending."""
        return self.stored_bytes == 0.0


class CrashInjected(RuntimeError):
    """Raised when a commit is aborted by an injected crash."""


@dataclass
class _Version:
    data: np.ndarray
    sequence: int


class ShadowCommit:
    """Crash-consistent double-buffered object store on a PM domain.

    Protocol per commit: write the inactive buffer, flush, fence, then
    flip the commit record (one durable 8-byte store + flush + fence).
    A crash injected before the flip leaves the previous version intact.
    """

    def __init__(self, domain: PersistenceDomain) -> None:
        self.domain = domain
        self._buffers: list[_Version | None] = [None, None]
        self._active: int = -1  # no committed version yet
        self._sequence = 0

    def commit(self, data: np.ndarray, crash: bool = False) -> int:
        """Durably commit a new version; returns its sequence number.

        Args:
            data: the object state to persist (copied).
            crash: abort after writing the shadow but *before* the commit
                record flips — simulating a power failure.

        Raises:
            CrashInjected: when ``crash`` is set; the store still holds
                the previous committed version.
        """
        shadow = 1 - self._active if self._active >= 0 else 0
        self._sequence += 1
        self._buffers[shadow] = _Version(
            data=np.array(data, copy=True), sequence=self._sequence
        )
        self.domain.store(float(np.asarray(data).nbytes))
        self.domain.flush()
        self.domain.fence()
        if crash:
            # The shadow is durable but the commit record never flips.
            self._sequence -= 1
            self._buffers[shadow] = None
            raise CrashInjected("crash injected before commit record flip")
        # Flip the commit record durably.
        self.domain.store(8.0)
        self.domain.flush()
        self.domain.fence()
        self._active = shadow
        return self._sequence

    def recover(self) -> np.ndarray | None:
        """State visible after a restart: the last committed version."""
        if self._active < 0:
            return None
        version = self._buffers[self._active]
        assert version is not None
        return np.array(version.data, copy=True)

    @property
    def committed_sequence(self) -> int:
        """Sequence number of the last durable commit (0 if none)."""
        if self._active < 0:
            return 0
        version = self._buffers[self._active]
        assert version is not None
        return version.sequence


class CheckpointedEmbedder:
    """Embedding pipeline wrapper with crash-safe PM checkpoints.

    Wraps an :class:`repro.core.embedding.OMeGaEmbedder`, committing the
    embedding to a :class:`ShadowCommit` after each run; the persistence
    overhead is reported alongside the pipeline's simulated time, and a
    crash during checkpointing never loses the previous embedding.
    """

    def __init__(self, embedder, domain: PersistenceDomain | None = None) -> None:
        from repro.memsim.devices import pm_spec

        self.embedder = embedder
        self.domain = domain or PersistenceDomain(device=pm_spec())
        self.store = ShadowCommit(self.domain)

    def embed_and_checkpoint(
        self, edges: np.ndarray, n_nodes: int, crash: bool = False
    ):
        """Run the pipeline and durably commit its embedding.

        Returns (EmbeddingResult, checkpoint_seconds).
        """
        result = self.embedder.embed_edges(edges, n_nodes)
        before = self.domain.sim_seconds
        self.store.commit(result.embedding, crash=crash)
        return result, self.domain.sim_seconds - before

    def recover_embedding(self) -> np.ndarray | None:
        """The last durably committed embedding (survives crashes)."""
        return self.store.recover()
