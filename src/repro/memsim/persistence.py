"""App-direct PM persistence: flush/fence costs and crash-safe commits.

§II-B: in App-directed mode applications access PM with loads/stores
"while employing ordering facilities to enforce consistency and ensure
crash recovery".  This module supplies those facilities for the
simulation substrate:

- :class:`PersistenceDomain` — charges ``CLWB``-style cache-line
  write-backs and ``SFENCE`` ordering points, and tracks which bytes are
  durable vs merely stored;
- :class:`ShadowCommit` — the classic crash-consistent double-buffer
  protocol (write shadow → flush → fence → flip a flushed commit record);
- :class:`StageCheckpointStore` — a WAL-style append-only log of
  per-stage pipeline checkpoints (graph read, factorization,
  propagation), each committed with the same flush/fence discipline;
- :class:`CheckpointedEmbedder` — runs the pipeline stage by stage,
  checkpointing after every stage, honouring injected crash points
  (:mod:`repro.faults`) and resuming from the last durable stage with a
  bit-identical final embedding.

Crashes are *injected* (``crash=True`` or a
:class:`~repro.faults.FaultInjector`), so tests can verify recovery
semantics exactly.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.faults import FaultInjector, InjectedCrash
from repro.memsim.costmodel import CostModel
from repro.memsim.devices import (
    AccessPattern,
    DeviceSpec,
    Locality,
    Operation,
)

#: Cache-line granularity of CLWB write-backs.
CACHE_LINE_BYTES = 64
#: Cost of one SFENCE ordering point, seconds (~tens of ns).
FENCE_SECONDS = 30e-9


@dataclass
class PersistenceDomain:
    """Durability accounting for one PM device.

    Stores are fast (cache-resident) until flushed; ``flush`` charges the
    PM write path per cache line, ``fence`` orders them.  ``sim_seconds``
    accumulates the persistence overhead the paper's App-direct mode
    pays and Memory Mode does not expose to the application.
    """

    device: DeviceSpec
    cost_model: CostModel = field(default_factory=CostModel)
    sim_seconds: float = 0.0
    stored_bytes: float = 0.0
    durable_bytes: float = 0.0
    fences: int = 0

    def store(self, nbytes: float) -> None:
        """Buffer ``nbytes`` of stores (not yet durable)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.stored_bytes += nbytes

    def flush(self) -> float:
        """CLWB all pending stores to the PM media; returns the cost."""
        pending = self.stored_bytes
        if pending == 0.0:
            return 0.0
        lines = -(-pending // CACHE_LINE_BYTES)
        seconds = self.cost_model.access_time(
            self.device,
            Operation.WRITE,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            lines * CACHE_LINE_BYTES,
        )
        self.sim_seconds += seconds
        self.durable_bytes += pending
        self.stored_bytes = 0.0
        return seconds

    def fence(self) -> float:
        """SFENCE: order preceding flushes; returns the cost."""
        self.fences += 1
        self.sim_seconds += FENCE_SECONDS
        return FENCE_SECONDS

    @property
    def all_durable(self) -> bool:
        """True when no stores are pending."""
        return self.stored_bytes == 0.0


class CrashInjected(InjectedCrash):
    """Raised when a commit is aborted by an injected crash."""

    def __init__(self, message: str, site: str = "commit") -> None:
        RuntimeError.__init__(self, message)
        self.site = site
        self.phase = "before_commit"


@dataclass
class _Version:
    data: np.ndarray
    sequence: int


class ShadowCommit:
    """Crash-consistent double-buffered object store on a PM domain.

    Protocol per commit: write the inactive buffer, flush, fence, then
    flip the commit record (one durable 8-byte store + flush + fence).
    A crash injected before the flip leaves the previous version intact.
    """

    def __init__(self, domain: PersistenceDomain) -> None:
        self.domain = domain
        self._buffers: list[_Version | None] = [None, None]
        self._active: int = -1  # no committed version yet
        self._sequence = 0

    def commit(self, data: np.ndarray, crash: bool = False) -> int:
        """Durably commit a new version; returns its sequence number.

        Args:
            data: the object state to persist (copied).
            crash: abort after writing the shadow but *before* the commit
                record flips — simulating a power failure.

        Raises:
            CrashInjected: when ``crash`` is set; the store still holds
                the previous committed version.
        """
        shadow = 1 - self._active if self._active >= 0 else 0
        self._sequence += 1
        self._buffers[shadow] = _Version(
            data=np.array(data, copy=True), sequence=self._sequence
        )
        self.domain.store(float(np.asarray(data).nbytes))
        self.domain.flush()
        self.domain.fence()
        if crash:
            # The shadow is durable but the commit record never flips.
            self._sequence -= 1
            self._buffers[shadow] = None
            raise CrashInjected("crash injected before commit record flip")
        # Flip the commit record durably.
        self.domain.store(8.0)
        self.domain.flush()
        self.domain.fence()
        self._active = shadow
        return self._sequence

    def recover(self) -> np.ndarray | None:
        """State visible after a restart: the last committed version."""
        if self._active < 0:
            return None
        version = self._buffers[self._active]
        assert version is not None
        return np.array(version.data, copy=True)

    @property
    def committed_sequence(self) -> int:
        """Sequence number of the last durable commit (0 if none)."""
        if self._active < 0:
            return 0
        version = self._buffers[self._active]
        assert version is not None
        return version.sequence


def record_checksum(arrays: dict[str, np.ndarray], meta: dict) -> int:
    """CRC32 of a checkpoint record's payload (arrays + meta).

    Covers each array's name, shape, dtype, and raw bytes plus the
    canonical-JSON meta, so any bit flip, truncation, or reshape of the
    stored payload fails verification.
    """
    crc = 0
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        header = f"{name}:{array.dtype.str}:{array.shape}".encode()
        crc = zlib.crc32(header, crc)
        crc = zlib.crc32(array.tobytes(), crc)
    crc = zlib.crc32(json.dumps(meta, sort_keys=True).encode(), crc)
    return crc


@dataclass
class StageRecord:
    """One durable WAL entry: a completed pipeline stage's checkpoint.

    ``crc`` is the checksum computed at commit time; it is *not*
    recomputed when the media is damaged, so
    :meth:`StageCheckpointStore.verify` detects corrupt or torn records.
    """

    stage: str
    arrays: dict[str, np.ndarray]
    meta: dict
    sequence: int
    crc: int = 0


class StageCheckpointStore:
    """WAL-style append-only stage-checkpoint log on a PM domain.

    Each append follows the App-direct discipline: store the record's
    payload, flush, fence, then flip a flushed commit record.  A crash
    injected before the flip (``crash=True``) loses only that record —
    every earlier stage stays durable, which is exactly what
    :meth:`CheckpointedEmbedder.resume` recovers.

    Every record carries a CRC32 over its payload
    (:func:`record_checksum`); readers that must not trust the media
    (:class:`repro.shard.ShardHost` recovery) verify before use and walk
    back past damaged records.
    """

    def __init__(self, domain: PersistenceDomain) -> None:
        self.domain = domain
        self._records: list[StageRecord] = []
        self._sequence = 0

    def append(
        self,
        stage: str,
        arrays: dict[str, np.ndarray],
        meta: dict,
        crash: bool = False,
    ) -> int:
        """Durably append one stage checkpoint; returns its sequence.

        Raises:
            CrashInjected: when ``crash`` is set — the record is lost,
                the log up to the previous stage survives.
        """
        payload_bytes = 0.0
        stored = {}
        for name, array in arrays.items():
            array = np.array(array, copy=True)
            stored[name] = array
            payload_bytes += float(array.nbytes)
        payload_bytes += float(len(json.dumps(meta, sort_keys=True)))
        self.domain.store(payload_bytes)
        self.domain.flush()
        self.domain.fence()
        if crash:
            raise CrashInjected(
                f"crash injected during the {stage!r} checkpoint commit",
                site=stage,
            )
        self.domain.store(8.0)
        self.domain.flush()
        self.domain.fence()
        self._sequence += 1
        stored_meta = json.loads(json.dumps(meta))
        self._records.append(
            StageRecord(
                stage=stage,
                arrays=stored,
                meta=stored_meta,
                sequence=self._sequence,
                crc=record_checksum(stored, stored_meta),
            )
        )
        return self._sequence

    def last(self) -> StageRecord | None:
        """The most recent durable record (what a restart recovers)."""
        return self._records[-1] if self._records else None

    @property
    def records(self) -> list[StageRecord]:
        """Every durable record, commit order (newest last)."""
        return list(self._records)

    @staticmethod
    def verify(record: StageRecord) -> bool:
        """Whether a record's payload still matches its commit-time CRC."""
        return record_checksum(record.arrays, record.meta) == record.crc

    def quarantine(self, record: StageRecord) -> None:
        """Drop a damaged record from the log (it never serves again)."""
        self._records = [r for r in self._records if r is not record]

    def damage_last(self, mode: str = "corrupt") -> StageRecord | None:
        """Simulate media damage on the newest record (fault injection).

        ``"corrupt"`` flips bytes inside the largest stored array;
        ``"torn"`` truncates it (a torn write).  The record's CRC is
        left at its commit-time value, so :meth:`verify` fails.  Returns
        the damaged record, or ``None`` when the log is empty or the
        newest record has no array payload to damage.
        """
        if mode not in ("corrupt", "torn"):
            raise ValueError(f"mode must be 'corrupt' or 'torn', got {mode!r}")
        if not self._records:
            return None
        record = self._records[-1]
        if not record.arrays:
            return None
        name = max(record.arrays, key=lambda n: record.arrays[n].nbytes)
        array = record.arrays[name]
        if mode == "corrupt":
            damaged = np.array(array, copy=True)
            flat = damaged.view(np.uint8).reshape(-1)
            flat[: max(1, len(flat) // 64)] ^= 0xFF
            record.arrays[name] = damaged
        else:
            flat = np.ascontiguousarray(array).reshape(-1)
            record.arrays[name] = np.array(
                flat[: max(0, len(flat) - max(1, len(flat) // 2))],
                copy=True,
            )
        return record

    @property
    def stages(self) -> list[str]:
        """Names of every durable stage, in commit order."""
        return [record.stage for record in self._records]

    def clear(self) -> None:
        """Truncate the log (the start of a fresh run)."""
        self._records = []


class CheckpointedEmbedder:
    """Embedding pipeline wrapper with crash-safe PM checkpoints.

    Wraps an :class:`repro.core.embedding.OMeGaEmbedder` two ways:

    - :meth:`embed_and_checkpoint` — the original whole-run protocol:
      run the pipeline, then shadow-commit the embedding.  The computed
      result is kept in memory even when the commit crashes, so
      :meth:`retry_checkpoint` can redo the commit alone instead of
      forcing a full re-embed;
    - :meth:`embed_with_checkpoints` / :meth:`resume` — stage-granular
      WAL checkpoints (after graph read, factorization and propagation).
      An injected crash loses at most one stage; ``resume()`` recovers
      the last durable stage, skips the completed work, and produces an
      embedding bit-identical to an uninterrupted run.  Recovered
      simulated seconds are reported via the ``checkpoint.*`` metrics.
    """

    def __init__(self, embedder, domain: PersistenceDomain | None = None) -> None:
        from repro.memsim.devices import pm_spec

        self.embedder = embedder
        self.domain = domain or PersistenceDomain(device=pm_spec())
        self.store = ShadowCommit(self.domain)
        self.wal = StageCheckpointStore(self.domain)
        self._last_result = None
        self._pending_graph: tuple[np.ndarray, int] | None = None

    # -- whole-run protocol -------------------------------------------------

    def embed_and_checkpoint(
        self, edges: np.ndarray, n_nodes: int, crash: bool = False
    ):
        """Run the pipeline and durably commit its embedding.

        Returns (EmbeddingResult, checkpoint_seconds).  The in-memory
        result survives a commit crash — recover it via
        :attr:`last_result` or redo the commit with
        :meth:`retry_checkpoint` instead of re-embedding.
        """
        result = self.embedder.embed_edges(edges, n_nodes)
        self._last_result = result
        before = self.domain.sim_seconds
        self.store.commit(result.embedding, crash=crash)
        return result, self.domain.sim_seconds - before

    def retry_checkpoint(self):
        """Re-commit the last computed embedding without re-embedding.

        Returns (EmbeddingResult, checkpoint_seconds).
        """
        if self._last_result is None:
            raise RuntimeError(
                "no embedding computed yet; run embed_and_checkpoint first"
            )
        before = self.domain.sim_seconds
        self.store.commit(self._last_result.embedding)
        return self._last_result, self.domain.sim_seconds - before

    @property
    def last_result(self):
        """The most recently computed result (kept across commit crashes)."""
        return self._last_result

    def recover_embedding(self) -> np.ndarray | None:
        """The last durably committed embedding (survives crashes)."""
        return self.store.recover()

    # -- stage-granular protocol --------------------------------------------

    def embed_with_checkpoints(
        self,
        edges: np.ndarray,
        n_nodes: int,
        faults: FaultInjector | None = None,
    ):
        """Run stage by stage, WAL-checkpointing after every stage.

        An injected crash (``faults``) aborts the run mid-pipeline and
        propagates :class:`~repro.faults.InjectedCrash`; call
        :meth:`resume` to recover.  Returns the
        :class:`~repro.core.embedding.EmbeddingResult`.
        """
        self.wal.clear()
        self._pending_graph = (np.asarray(edges), n_nodes)
        from repro.formats.convert import edges_to_csdb

        adjacency = edges_to_csdb(edges, n_nodes)
        run = self.embedder.start_run(adjacency, n_edges=len(edges))
        return self._drive(run, faults)

    def resume(self, faults: FaultInjector | None = None):
        """Recover the last durable stage and finish the pipeline.

        Completed stages are skipped — their numeric outputs and cost
        accounting come from the WAL — so the final embedding is
        bit-identical to an uninterrupted run.  Metrics:
        ``checkpoint.resumed_runs``, ``checkpoint.recovered_stages``
        and ``checkpoint.recovered_sim_seconds``.
        """
        if self._pending_graph is None:
            raise RuntimeError(
                "nothing to resume; run embed_with_checkpoints first"
            )
        from repro.core.embedding import PipelineState
        from repro.formats.convert import edges_to_csdb

        edges, n_nodes = self._pending_graph
        adjacency = edges_to_csdb(edges, n_nodes)
        record = self.wal.last()
        state = (
            PipelineState.from_payload(record.arrays, record.meta)
            if record is not None
            else None
        )
        run = self.embedder.start_run(
            adjacency, n_edges=len(edges), state=state
        )
        metrics = self.embedder.metrics
        metrics.counter("checkpoint.resumed_runs").inc()
        if state is not None:
            metrics.counter("checkpoint.recovered_stages").inc(
                len(state.completed_stages)
            )
            metrics.counter("checkpoint.recovered_sim_seconds").inc(
                state.sim_seconds
            )
        return self._drive(run, faults)

    def _drive(self, run, faults: FaultInjector | None):
        """Advance a run to completion, checkpointing at each boundary.

        The persistence overhead accrued here (WAL appends + final
        shadow commit, crashed or not) is exported as the
        ``checkpoint.sim_seconds`` counter — the numerator of the
        ``checkpoint_overhead_fraction`` SLO.
        """
        before = self.domain.sim_seconds
        try:
            while run.next_stage is not None:
                try:
                    stage = run.run_next()
                except BaseException:
                    run.abort()
                    raise
                crash_during = faults is not None and faults.should_crash(
                    stage, phase="before_commit"
                )
                arrays, meta = run.state.to_payload()
                try:
                    self.wal.append(stage, arrays, meta, crash=crash_during)
                except CrashInjected:
                    run.abort()
                    raise
                if faults is not None and faults.should_crash(stage):
                    run.abort()
                    raise InjectedCrash(stage)
            result = run.finish()
            self._last_result = result
            self.store.commit(result.embedding)
        finally:
            self.embedder.metrics.counter("checkpoint.sim_seconds").inc(
                self.domain.sim_seconds - before
            )
        return result

    @property
    def checkpoint_sim_seconds(self) -> float:
        """Total persistence overhead charged to the PM domain."""
        return self.domain.sim_seconds
