"""Heterogeneous-memory simulation substrate.

The paper evaluates OMeGa on a two-socket Optane machine (DRAM + Persistent
Memory under NUMA).  This subpackage replaces that hardware with a calibrated
analytical model:

- :mod:`repro.memsim.devices` — bandwidth/latency tables for DRAM, PM, SSD
  and the network link, including thread-count saturation curves;
- :mod:`repro.memsim.numa` — the two-socket topology and thread binding;
- :mod:`repro.memsim.costmodel` — converts access batches (bytes, pattern,
  locality, entropy) into simulated nanoseconds, implementing Eq. 5 of the
  paper for entropy-interpolated bandwidth;
- :mod:`repro.memsim.allocator` — placement-tracking allocator with
  capacity accounting and the OS policies (Local / Interleaved) plus
  explicit placement used by NaDP;
- :mod:`repro.memsim.clock` — per-thread simulated clocks and makespan;
- :mod:`repro.memsim.trace` — per-operation cost ledgers (Fig. 7a);
- :mod:`repro.memsim.probe` — the FIO/MLC-style probe that regenerates the
  bandwidth characterization of Fig. 9;
- :mod:`repro.memsim.memorymode` — the transparent Memory-Mode
  configuration (DRAM as a direct-mapped write-back cache);
- :mod:`repro.memsim.persistence` — App-direct flush/fence accounting and
  crash-consistent shadow commits.

All SpMM numerics are still computed for real with numpy; only *time* is
simulated.
"""

from repro.memsim.allocator import (
    CapacityError,
    HeterogeneousAllocator,
    Placement,
    PlacementPolicy,
    TieredMatrix,
)
from repro.memsim.clock import SimClock, VirtualClock
from repro.memsim.costmodel import CostModel
from repro.memsim.devices import (
    AccessPattern,
    DeviceSpec,
    Locality,
    MemoryKind,
    Operation,
    cxl_spec,
    default_devices,
    dram_spec,
    network_spec,
    pm_spec,
    ssd_spec,
)
from repro.memsim.memorymode import DirectMappedCache, MemoryModeModel
from repro.memsim.persistence import (
    CheckpointedEmbedder,
    CrashInjected,
    PersistenceDomain,
    ShadowCommit,
    StageCheckpointStore,
    StageRecord,
)
from repro.memsim.numa import NumaTopology, cxl_testbed, paper_testbed
from repro.memsim.probe import BandwidthprobeResult, probe_bandwidth, probe_latency
from repro.memsim.trace import CostTrace

__all__ = [
    "AccessPattern",
    "BandwidthprobeResult",
    "CapacityError",
    "CheckpointedEmbedder",
    "CostModel",
    "CostTrace",
    "CrashInjected",
    "DirectMappedCache",
    "MemoryModeModel",
    "PersistenceDomain",
    "ShadowCommit",
    "StageCheckpointStore",
    "StageRecord",
    "DeviceSpec",
    "HeterogeneousAllocator",
    "Locality",
    "MemoryKind",
    "NumaTopology",
    "Operation",
    "Placement",
    "PlacementPolicy",
    "SimClock",
    "VirtualClock",
    "TieredMatrix",
    "cxl_spec",
    "cxl_testbed",
    "default_devices",
    "dram_spec",
    "paper_testbed",
    "network_spec",
    "pm_spec",
    "probe_bandwidth",
    "probe_latency",
    "ssd_spec",
]
