"""Per-thread simulated clocks and the serving event clock.

A parallel phase is simulated by advancing each thread's clock by the cost
of its workload; the phase's completion time (the *makespan*) is the
maximum across threads, and the spread of the per-thread times yields the
tail-latency statistics of Fig. 13.

:class:`VirtualClock` is the single monotonic clock of the serving layer
(:mod:`repro.serve`): request arrivals, queue waits, backend service and
circuit-breaker recovery windows are all positions on it, so a replayed
request trace is deterministic down to the tie-breaks.
"""

from __future__ import annotations

import numpy as np


class VirtualClock:
    """A single monotonically advancing simulated clock.

    Unlike :class:`SimClock` (per-thread makespan accounting inside one
    kernel), a ``VirtualClock`` is a global event-time cursor: the serving
    event loop advances it past arrivals, queue waits and service times,
    and components that need "now" (deadline checks, breaker recovery)
    read :attr:`now`.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by ``seconds``; returns the new time."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now


class SimClock:
    """Tracks simulated elapsed time for a set of logical threads."""

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        self.n_threads = n_threads
        self._times = np.zeros(n_threads, dtype=np.float64)

    def advance(self, thread_id: int, seconds: float) -> None:
        """Advance one thread's clock."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._times[thread_id] += seconds

    def advance_all(self, seconds: float) -> None:
        """Advance every thread's clock (serial/barrier phases)."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._times += seconds

    def synchronize(self) -> float:
        """Barrier: bring every thread up to the slowest one.

        Returns the makespan at the barrier.
        """
        makespan = float(self._times.max())
        self._times[:] = makespan
        return makespan

    @property
    def thread_times(self) -> np.ndarray:
        """Copy of the per-thread elapsed times, in seconds."""
        return self._times.copy()

    @property
    def makespan(self) -> float:
        """Completion time of the slowest thread."""
        return float(self._times.max())

    @property
    def mean_time(self) -> float:
        """Average per-thread elapsed time."""
        return float(self._times.mean())

    def percentile(self, q: float) -> float:
        """Percentile of the per-thread time distribution (q in [0, 100])."""
        return float(np.percentile(self._times, q))

    def reset(self) -> None:
        """Zero all clocks."""
        self._times[:] = 0.0
