"""Analytical cost model: access batches -> simulated seconds.

This module is the heart of the simulation substrate.  Every data movement
performed by the SpMM engine is expressed as a *batch* (so many bytes, on
such a device, with such a pattern and locality, shared by so many
threads) and converted into simulated time.

Two features map directly onto the paper:

- :meth:`CostModel.entropy_interpolated_bandwidth` implements Eq. 5,
  ``BW_eff = BW_seq * (1 - Z(H) + beta * Z(H))`` with
  ``beta = BW_rand / BW_seq``: a workload whose normalized entropy ``Z``
  approaches 1 degrades to random bandwidth, while ``Z -> 0`` retains the
  full sequential bandwidth.
- :meth:`CostModel.compute_time` charges multiply-accumulate work against
  the per-core arithmetic throughput (term 4 of Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.devices import (
    CPU_MACS_PER_SECOND,
    AccessPattern,
    DeviceSpec,
    Locality,
    Operation,
)


@dataclass(frozen=True)
class CostModel:
    """Converts access batches into simulated seconds.

    Attributes:
        cpu_macs_per_second: sustained per-core multiply-accumulate rate.
        latency_batch_bytes: granularity at which per-access latency is
            charged.  Hardware amortizes latency over cache-line/XPLine
            bursts; we charge one latency per 256-byte burst of a random
            batch and one per 4 KiB of a sequential batch.
    """

    cpu_macs_per_second: float = CPU_MACS_PER_SECOND
    random_burst_bytes: int = 256
    sequential_burst_bytes: int = 4096
    #: Effective cross-socket (UPI) bandwidth available to *scattered*
    #: remote traffic, shared by all threads issuing it.  Sequential
    #: remote streams run near link peak (the Fig. 9 observation that
    #: sequential remote PM reads match local ones), but cache-line-
    #: granular scattered transfers waste most of each link flit, so the
    #: usable bandwidth collapses — the reason NaDP keeps dense gathers
    #: and writes socket-local.
    #: 3.5 GiB/s reflects measured cross-socket random-access throughput
    #: collapse on Cascade Lake (UPI flit waste + directory coherence on
    #: Optane-backed lines).
    interconnect_scattered_bandwidth: float = 3.5 * 1024**3

    def access_time(
        self,
        device: DeviceSpec,
        op: Operation,
        pattern: AccessPattern,
        locality: Locality,
        nbytes: float,
        threads_sharing: int = 1,
    ) -> float:
        """Simulated seconds for one thread to move ``nbytes``.

        ``threads_sharing`` is the number of threads concurrently hammering
        the same device; bandwidth is divided according to the device's
        saturation curve.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        bandwidth = device.per_thread_bandwidth(op, pattern, locality, threads_sharing)
        transfer = nbytes / bandwidth
        if pattern is AccessPattern.SEQUENTIAL:
            # Streaming accesses pipeline: one setup latency, then the
            # transfer runs at bandwidth.
            return device.latency(op, locality) + transfer
        if locality is Locality.REMOTE:
            cap = (
                self.interconnect_scattered_bandwidth
                * device.interconnect_efficiency
                / threads_sharing
            )
            transfer = max(transfer, nbytes / cap)
        burst = getattr(device, "random_burst_bytes", self.random_burst_bytes)
        n_bursts = max(1.0, nbytes / burst)
        # Random-access latency overlaps with transfer on real hardware;
        # charge the max of the bandwidth-bound and latency-bound
        # estimates rather than the sum.
        latency = n_bursts * device.latency(op, locality)
        return max(transfer, latency)

    def entropy_interpolated_bandwidth(
        self,
        device: DeviceSpec,
        locality: Locality,
        z_entropy: float,
        threads_sharing: int = 1,
        op: Operation = Operation.READ,
    ) -> float:
        """Eq. 5: bandwidth for a workload with normalized entropy ``z``.

        ``z = 0`` means fully sequential access (dense-matrix rows touched
        contiguously), ``z = 1`` means fully scattered access.
        """
        if not 0.0 <= z_entropy <= 1.0 + 1e-9:
            raise ValueError(f"z_entropy must be in [0, 1], got {z_entropy}")
        z = min(z_entropy, 1.0)
        bw_seq = device.per_thread_bandwidth(
            op, AccessPattern.SEQUENTIAL, locality, threads_sharing
        )
        bw_rand = device.per_thread_bandwidth(
            op, AccessPattern.RANDOM, locality, threads_sharing
        )
        beta = (bw_rand / bw_seq) * device.scatter_beta_scale
        return bw_seq * (1.0 - z + beta * z)

    def entropy_access_time(
        self,
        device: DeviceSpec,
        locality: Locality,
        nbytes: float,
        z_entropy: float,
        threads_sharing: int = 1,
        op: Operation = Operation.READ,
    ) -> float:
        """Seconds to move ``nbytes`` at the Eq. 5 interpolated bandwidth."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        bandwidth = self.entropy_interpolated_bandwidth(
            device, locality, z_entropy, threads_sharing, op
        )
        if locality is Locality.REMOTE and z_entropy > 0.0:
            # The scattered share of a remote stream is throttled by the
            # interconnect's poor cache-line-granular efficiency (much
            # worse when the remote medium is Optane than DRAM).
            cap = (
                self.interconnect_scattered_bandwidth
                * device.interconnect_efficiency
                / threads_sharing
            )
            scattered_cap = cap / z_entropy
            bandwidth = min(bandwidth, scattered_cap)
        return nbytes / bandwidth

    def compute_time(self, macs: float) -> float:
        """Seconds of arithmetic for ``macs`` multiply-accumulates (term 4)."""
        if macs < 0:
            raise ValueError(f"macs must be >= 0, got {macs}")
        return macs / self.cpu_macs_per_second

    def beta(self, device: DeviceSpec, locality: Locality) -> float:
        """The paper's beta = BW_rand / BW_seq for a device's scattered
        reads (including the device's sub-burst scatter penalty)."""
        key_seq = (Operation.READ, AccessPattern.SEQUENTIAL, locality)
        key_rand = (Operation.READ, AccessPattern.RANDOM, locality)
        ratio = device.peak_bandwidth[key_rand] / device.peak_bandwidth[key_seq]
        return ratio * device.scatter_beta_scale
