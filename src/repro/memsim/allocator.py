"""Placement-tracking allocator for the simulated DRAM/PM tiers.

In App-directed mode (the configuration the paper uses, §II-B) the
application chooses, per allocation, which tier and which NUMA socket a
buffer lives on.  :class:`HeterogeneousAllocator` plays the role of
libmemkind/PMDK here: it tracks per-(tier, socket) usage, enforces
capacity, and records where every matrix lives so the cost model can
classify each access as DRAM/PM x local/remote.

Besides explicit placement (used by NaDP) the allocator implements the two
OS policies the paper compares against (§III-D):

- ``LOCAL``: allocate on a preferred socket, spilling to other sockets
  when the preferred one is full;
- ``INTERLEAVE``: round-robin pages across sockets, modeled as an even
  fractional split.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.memsim.devices import MemoryKind
from repro.memsim.numa import NumaTopology
from repro.obs.metrics import MetricsRegistry


class CapacityError(MemoryError):
    """Raised when an allocation exceeds the capacity of a tier.

    This is the simulated analogue of the OOM failures the paper reports
    for ProNE-DRAM / OMeGa-DRAM / FusedMM on billion-scale graphs.
    """


class PlacementPolicy(enum.Enum):
    """How an allocation is spread across NUMA sockets."""

    LOCAL = "local"
    INTERLEAVE = "interleave"
    EXPLICIT = "explicit"


@dataclass(frozen=True)
class Placement:
    """Where a buffer lives: a tier plus a per-socket byte split.

    Attributes:
        kind: memory tier holding the buffer.
        socket_fractions: fraction of the buffer's bytes resident on each
            socket; sums to 1.  A single-socket placement has a 1.0 entry.
        nbytes: total size of the buffer.
    """

    kind: MemoryKind
    socket_fractions: tuple[float, ...]
    nbytes: int

    def __post_init__(self) -> None:
        total = sum(self.socket_fractions)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"socket_fractions must sum to 1, got {self.socket_fractions}"
            )
        if any(f < -1e-12 for f in self.socket_fractions):
            raise ValueError("socket_fractions must be non-negative")
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")

    def local_fraction(self, socket: int) -> float:
        """Fraction of this buffer that is local to ``socket``."""
        return self.socket_fractions[socket]

    @property
    def home_socket(self) -> int:
        """Socket holding the largest share of the buffer."""
        return int(np.argmax(self.socket_fractions))


@dataclass
class TieredMatrix:
    """A numpy array plus the placement metadata the simulator needs.

    The array's contents are real (all matrix algebra is executed for
    real); only its *location* is simulated.
    """

    data: np.ndarray
    placement: Placement
    name: str = ""

    @property
    def nbytes(self) -> int:
        """Size of the underlying buffer in bytes."""
        return int(self.data.nbytes)

    @property
    def kind(self) -> MemoryKind:
        """Tier the buffer lives on."""
        return self.placement.kind

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TieredMatrix(name={self.name!r}, shape={self.data.shape},"
            f" kind={self.kind.value}, fractions={self.placement.socket_fractions})"
        )


class HeterogeneousAllocator:
    """Capacity-enforcing allocator over the simulated tiers.

    Args:
        topology: NUMA machine the allocations live on.
        dram_capacity_bytes: optional override of the per-socket DRAM
            capacity (used to emulate small-DRAM configurations in tests
            and in the ASL granularity computation).
        pm_capacity_bytes: optional override of the per-socket PM capacity.
        metrics: optional registry receiving per-tier allocation bytes,
            placement-decision counters and occupancy gauges.
    """

    def __init__(
        self,
        topology: NumaTopology,
        dram_capacity_bytes: int | None = None,
        pm_capacity_bytes: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.topology = topology
        self.metrics = metrics
        self._capacity: dict[MemoryKind, int] = {}
        for kind in (MemoryKind.DRAM, MemoryKind.PM, MemoryKind.SSD):
            self._capacity[kind] = topology.devices[kind].capacity_bytes
        if dram_capacity_bytes is not None:
            self._capacity[MemoryKind.DRAM] = dram_capacity_bytes
        if pm_capacity_bytes is not None:
            self._capacity[MemoryKind.PM] = pm_capacity_bytes
        self._used: dict[tuple[MemoryKind, int], int] = {
            (kind, socket): 0
            for kind, socket in itertools.product(
                self._capacity, range(topology.n_sockets)
            )
        }
        self._live: list[TieredMatrix] = []

    def capacity(self, kind: MemoryKind, socket: int | None = None) -> int:
        """Capacity in bytes of a tier (one socket, or all if None)."""
        per_socket = self._capacity[kind]
        if socket is None:
            return per_socket * self.topology.n_sockets
        return per_socket

    def used(self, kind: MemoryKind, socket: int | None = None) -> int:
        """Bytes currently allocated on a tier (one socket, or all)."""
        if socket is None:
            return sum(
                used for (k, _), used in self._used.items() if k is kind
            )
        return self._used[(kind, socket)]

    def available(self, kind: MemoryKind, socket: int | None = None) -> int:
        """Bytes still free on a tier (one socket, or all)."""
        return self.capacity(kind, socket) - self.used(kind, socket)

    def allocate(
        self,
        array: np.ndarray,
        kind: MemoryKind,
        policy: PlacementPolicy = PlacementPolicy.LOCAL,
        socket: int = 0,
        name: str = "",
    ) -> TieredMatrix:
        """Place ``array`` on a tier and return its tracked handle.

        Raises:
            CapacityError: if the tier cannot hold the array anywhere
                permitted by the policy.
        """
        nbytes = int(array.nbytes)
        fractions = self._resolve_fractions(kind, policy, socket, nbytes)
        for s, fraction in enumerate(fractions):
            self._used[(kind, s)] += int(round(fraction * nbytes))
        matrix = TieredMatrix(
            data=array,
            placement=Placement(
                kind=kind, socket_fractions=tuple(fractions), nbytes=nbytes
            ),
            name=name,
        )
        self._live.append(matrix)
        if self.metrics is not None:
            self.metrics.counter(
                "mem.alloc.count", tier=kind.value, policy=policy.value
            ).inc()
            self.metrics.counter("mem.alloc.bytes", tier=kind.value).inc(nbytes)
            self._update_occupancy(kind)
        return matrix

    def free(self, matrix: TieredMatrix) -> None:
        """Release a previously allocated matrix."""
        try:
            self._live.remove(matrix)
        except ValueError:
            raise ValueError(f"matrix {matrix.name!r} is not live") from None
        nbytes = matrix.placement.nbytes
        for s, fraction in enumerate(matrix.placement.socket_fractions):
            self._used[(matrix.kind, s)] -= int(round(fraction * nbytes))
        if self.metrics is not None:
            self.metrics.counter("mem.free.count", tier=matrix.kind.value).inc()
            self._update_occupancy(matrix.kind)

    def _update_occupancy(self, kind: MemoryKind) -> None:
        """Refresh the per-socket occupancy gauges of one tier."""
        for s in range(self.topology.n_sockets):
            self.metrics.gauge(
                "mem.used_bytes", tier=kind.value, socket=s
            ).set(self._used[(kind, s)])

    def live_matrices(self) -> tuple[TieredMatrix, ...]:
        """All currently allocated matrices (for introspection/tests)."""
        return tuple(self._live)

    def _resolve_fractions(
        self,
        kind: MemoryKind,
        policy: PlacementPolicy,
        socket: int,
        nbytes: int,
    ) -> list[float]:
        n = self.topology.n_sockets
        if policy is PlacementPolicy.EXPLICIT:
            if self.available(kind, socket) < nbytes:
                raise CapacityError(
                    f"{kind.value} socket {socket}: need {nbytes} B,"
                    f" only {self.available(kind, socket)} B free"
                )
            return [1.0 if s == socket else 0.0 for s in range(n)]
        if policy is PlacementPolicy.INTERLEAVE:
            share = nbytes // n + 1
            for s in range(n):
                if self.available(kind, s) < share:
                    raise CapacityError(
                        f"{kind.value} socket {s}: interleave share {share} B"
                        f" exceeds free {self.available(kind, s)} B"
                    )
            return [1.0 / n] * n
        # LOCAL: prefer the requested socket, spill the remainder elsewhere.
        remaining = nbytes
        fractions = [0.0] * n
        order = [socket] + [s for s in range(n) if s != socket]
        for s in order:
            take = min(remaining, self.available(kind, s))
            fractions[s] = take / nbytes if nbytes else 0.0
            remaining -= take
            if remaining == 0:
                break
        if remaining > 0:
            raise CapacityError(
                f"{kind.value}: need {nbytes} B, only"
                f" {self.available(kind)} B free across all sockets"
            )
        return fractions
