"""Device models for the heterogeneous memory hierarchy.

The constants below are calibrated from the paper and the measurement
studies it cites (Yang et al., FAST'20; Izraelevitz et al.; §III-D /
Fig. 9 of the paper itself):

- PM sequential read bandwidth is ~1/3 of DRAM, PM write ~1/6 of DRAM;
- PM sequential reads (local or remote) are 2.41x / 2.45x faster than
  random local / random remote reads;
- PM sequential *local* writes beat sequential remote writes by 3.23x and
  random remote writes by 4.99x; the peak remote write bandwidth is ~69.2%
  of the aggregate local write peak;
- PM latencies are 4.2x (local) / 3.3x (remote) above the corresponding
  DRAM-based system latencies;
- the NVMe SSD is an Intel P5510-class device; the cluster interconnect of
  the distributed baselines is a 25 GbE link.

Bandwidth scales with the number of concurrent threads following a
saturating curve ``B(t) = peak * t / (t + k)`` where ``k`` is the
half-saturation thread count: PM writes saturate after only a few threads
(the well-known Optane write-contention cliff) while DRAM scales almost
linearly to the core count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

GIB = 1024.0**3


class MemoryKind(enum.Enum):
    """The tiers of the simulated storage hierarchy."""

    DRAM = "dram"
    PM = "pm"
    SSD = "ssd"
    NETWORK = "network"


class Operation(enum.Enum):
    """Direction of a memory access."""

    READ = "read"
    WRITE = "write"


class AccessPattern(enum.Enum):
    """Spatial access pattern of a batch of memory accesses."""

    SEQUENTIAL = "seq"
    RANDOM = "rand"


class Locality(enum.Enum):
    """NUMA locality of an access relative to the issuing thread's socket."""

    LOCAL = "local"
    REMOTE = "remote"


#: Key into the bandwidth table of a :class:`DeviceSpec`.
BandwidthKey = tuple[Operation, AccessPattern, Locality]


def _bw_table(entries: dict[tuple[str, str, str], float]) -> dict[BandwidthKey, float]:
    """Build a bandwidth table from short string keys (GiB/s values)."""
    table: dict[BandwidthKey, float] = {}
    for (op, pattern, locality), gib_per_s in entries.items():
        key = (Operation(op), AccessPattern(pattern), Locality(locality))
        table[key] = gib_per_s * GIB
    return table


@dataclass(frozen=True)
class DeviceSpec:
    """Analytical model of one memory/storage device (per NUMA socket).

    Attributes:
        kind: tier of the device.
        name: human-readable device name.
        capacity_bytes: usable capacity per socket.
        peak_bandwidth: bytes/second at saturation, keyed by
            (operation, pattern, locality).
        latency_ns: per-access latency in nanoseconds, keyed by
            (operation, locality).
        half_saturation_threads: thread count at which the saturating
            bandwidth curve reaches half of its peak, keyed by operation.
        price_per_gib: USD per GiB, used only by the cost-efficiency
            reporting of Fig. 1.
    """

    kind: MemoryKind
    name: str
    capacity_bytes: int
    peak_bandwidth: dict[BandwidthKey, float]
    latency_ns: dict[tuple[Operation, Locality], float]
    half_saturation_threads: dict[Operation, float] = field(
        default_factory=lambda: {Operation.READ: 2.0, Operation.WRITE: 2.0}
    )
    price_per_gib: float = 0.0
    #: Extra degradation of *scattered* (entropy-driven, sub-burst) reads
    #: relative to the block-random bandwidth of the table: Optane's
    #: 256 B XPLine granularity makes element-granular gathers far slower
    #: than 256 B-block random I/O, while DRAM's open-page prefetchers
    #: recover most of the gap.  Used only by the Eq. 5 entropy path.
    scatter_beta_scale: float = 1.0
    #: Granularity of one random access (latency is charged per burst of
    #: this size): a cache-line burst for memories, a 4 KiB page for the
    #: SSD.
    random_burst_bytes: int = 256
    #: Multiplier on the cost model's cross-socket scattered-bandwidth
    #: cap when the remote target is this device.  Remote scattered DRAM
    #: runs at a healthy fraction of the UPI link; remote scattered
    #: *Optane* collapses (directory coherence + XPLine thrash), which is
    #: the asymmetry NaDP exploits.
    interconnect_efficiency: float = 1.0

    def bandwidth(
        self,
        op: Operation,
        pattern: AccessPattern,
        locality: Locality,
        threads: int = 1,
    ) -> float:
        """Aggregate bandwidth (bytes/s) available to ``threads`` threads.

        Follows the saturating contention curve described in the module
        docstring.  A single thread obtains
        ``peak / (1 + half_saturation)`` of the peak; as threads grow the
        curve approaches the peak asymptotically, matching the FIO sweeps
        of Fig. 9.
        """
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        peak = self.peak_bandwidth[(op, pattern, locality)]
        k = self.half_saturation_threads[op]
        return peak * threads / (threads + k)

    def per_thread_bandwidth(
        self,
        op: Operation,
        pattern: AccessPattern,
        locality: Locality,
        threads: int = 1,
    ) -> float:
        """Bandwidth (bytes/s) seen by each of ``threads`` contending threads."""
        return self.bandwidth(op, pattern, locality, threads) / threads

    def latency(self, op: Operation, locality: Locality) -> float:
        """Per-access latency in seconds."""
        return self.latency_ns[(op, locality)] * 1e-9


def dram_spec(capacity_gib: float = 96.0) -> DeviceSpec:
    """DDR4 DRAM model — one socket of the paper's testbed (3 x 32 GiB)."""
    return DeviceSpec(
        kind=MemoryKind.DRAM,
        name="DDR4-2933 DRAM (3 DIMMs/socket)",
        capacity_bytes=int(capacity_gib * GIB),
        peak_bandwidth=_bw_table(
            {
                ("read", "seq", "local"): 100.0,
                ("read", "seq", "remote"): 60.0,
                ("read", "rand", "local"): 40.0,
                ("read", "rand", "remote"): 26.0,
                ("write", "seq", "local"): 80.0,
                ("write", "seq", "remote"): 45.0,
                ("write", "rand", "local"): 35.0,
                ("write", "rand", "remote"): 20.0,
            }
        ),
        latency_ns={
            (Operation.READ, Locality.LOCAL): 80.0,
            (Operation.READ, Locality.REMOTE): 140.0,
            (Operation.WRITE, Locality.LOCAL): 85.0,
            (Operation.WRITE, Locality.REMOTE): 150.0,
        },
        half_saturation_threads={Operation.READ: 1.5, Operation.WRITE: 1.5},
        price_per_gib=6.95,
        scatter_beta_scale=0.85,
        interconnect_efficiency=3.5,
    )


def pm_spec(capacity_gib: float = 768.0) -> DeviceSpec:
    """Optane DC PM model — one socket of the paper's testbed (3 x 256 GiB).

    Sequential remote reads are kept comparable to sequential local reads
    (the paper's key observation motivating the *global sequential read*
    principle), while writes strongly prefer locality (*local write*):
    seq-local-write / seq-remote-write = 3.23 and
    seq-local-write / rand-remote-write = 4.99.
    """
    seq_read_local = 33.0  # DRAM/3
    seq_write_local = 13.3  # DRAM/6
    return DeviceSpec(
        kind=MemoryKind.PM,
        name="Intel Optane DCPMM 100-series (3 DIMMs/socket)",
        capacity_bytes=int(capacity_gib * GIB),
        peak_bandwidth=_bw_table(
            {
                ("read", "seq", "local"): seq_read_local,
                ("read", "seq", "remote"): seq_read_local * 0.97,
                ("read", "rand", "local"): seq_read_local / 2.41,
                ("read", "rand", "remote"): seq_read_local * 0.97 / 2.45,
                ("write", "seq", "local"): seq_write_local,
                ("write", "seq", "remote"): seq_write_local / 3.23,
                ("write", "rand", "local"): seq_write_local / 2.2,
                ("write", "rand", "remote"): seq_write_local / 4.99,
            }
        ),
        latency_ns={
            # PM latencies sit 4.2x (local) / 3.3x (remote) above the
            # DRAM-based system per the paper's MLC measurements.
            (Operation.READ, Locality.LOCAL): 80.0 * 4.2,
            (Operation.READ, Locality.REMOTE): 140.0 * 3.3,
            (Operation.WRITE, Locality.LOCAL): 85.0 * 4.2,
            (Operation.WRITE, Locality.REMOTE): 150.0 * 3.3,
        },
        half_saturation_threads={Operation.READ: 3.0, Operation.WRITE: 6.0},
        price_per_gib=3.31,
        scatter_beta_scale=0.35,
        # Remote scattered Optane collapses hardest: every miss drags a
        # directory-coherent XPLine across the socket link.
        interconnect_efficiency=0.3,
    )


def ssd_spec(capacity_gib: float = 3840.0) -> DeviceSpec:
    """Intel P5510-class NVMe SSD (for the Ginex/MariusGNN/SEM-SpMM models)."""
    return DeviceSpec(
        kind=MemoryKind.SSD,
        name="Intel P5510 3.84TB NVMe SSD",
        capacity_bytes=int(capacity_gib * GIB),
        peak_bandwidth=_bw_table(
            {
                ("read", "seq", "local"): 3.2,
                ("read", "seq", "remote"): 3.2,
                ("read", "rand", "local"): 1.5,
                ("read", "rand", "remote"): 1.5,
                ("write", "seq", "local"): 2.0,
                ("write", "seq", "remote"): 2.0,
                ("write", "rand", "local"): 0.9,
                ("write", "rand", "remote"): 0.9,
            }
        ),
        latency_ns={
            (Operation.READ, Locality.LOCAL): 82_000.0,
            (Operation.READ, Locality.REMOTE): 82_000.0,
            (Operation.WRITE, Locality.LOCAL): 20_000.0,
            (Operation.WRITE, Locality.REMOTE): 20_000.0,
        },
        half_saturation_threads={Operation.READ: 1.0, Operation.WRITE: 1.0},
        price_per_gib=0.16,
        random_burst_bytes=4096,
    )


def cxl_spec(capacity_gib: float = 768.0) -> DeviceSpec:
    """CXL Type-3 memory expander — the paper's anticipated successor tier.

    Modeled after published CXL 1.1 x8 expander measurements: roughly
    DDR5-channel-class bandwidth over the link, ~250 ns load latency,
    no NUMA-locality split (the device hangs off the link either way),
    symmetric-ish reads/writes, and far better scattered-access behaviour
    than Optane (DRAM media behind the controller).
    """
    return DeviceSpec(
        kind=MemoryKind.PM,
        name="CXL 1.1 x8 Type-3 memory expander (DDR5 media)",
        capacity_bytes=int(capacity_gib * GIB),
        peak_bandwidth=_bw_table(
            {
                ("read", "seq", "local"): 22.0,
                ("read", "seq", "remote"): 20.0,
                ("read", "rand", "local"): 14.0,
                ("read", "rand", "remote"): 12.5,
                ("write", "seq", "local"): 18.0,
                ("write", "seq", "remote"): 16.0,
                ("write", "rand", "local"): 12.0,
                ("write", "rand", "remote"): 10.5,
            }
        ),
        latency_ns={
            (Operation.READ, Locality.LOCAL): 250.0,
            (Operation.READ, Locality.REMOTE): 290.0,
            (Operation.WRITE, Locality.LOCAL): 240.0,
            (Operation.WRITE, Locality.REMOTE): 280.0,
        },
        half_saturation_threads={Operation.READ: 2.0, Operation.WRITE: 2.5},
        price_per_gib=4.10,
        scatter_beta_scale=0.7,
    )


def network_spec() -> DeviceSpec:
    """25 GbE cluster interconnect (for the DistDGL/DistGER models)."""
    return DeviceSpec(
        kind=MemoryKind.NETWORK,
        name="25 GbE interconnect",
        capacity_bytes=0,
        peak_bandwidth=_bw_table(
            {
                ("read", "seq", "local"): 2.9,
                ("read", "seq", "remote"): 2.9,
                ("read", "rand", "local"): 1.2,
                ("read", "rand", "remote"): 1.2,
                ("write", "seq", "local"): 2.9,
                ("write", "seq", "remote"): 2.9,
                ("write", "rand", "local"): 1.2,
                ("write", "rand", "remote"): 1.2,
            }
        ),
        latency_ns={
            (Operation.READ, Locality.LOCAL): 10_000.0,
            (Operation.READ, Locality.REMOTE): 10_000.0,
            (Operation.WRITE, Locality.LOCAL): 10_000.0,
            (Operation.WRITE, Locality.REMOTE): 10_000.0,
        },
        half_saturation_threads={Operation.READ: 1.0, Operation.WRITE: 1.0},
    )


#: Sustained per-core arithmetic throughput (multiply-accumulates/second)
#: of the 2.60 GHz Xeon Gold 6240 used in the paper; ~4-wide FMA AVX
#: discounted for the scalar-heavy inner loop of Algorithm 1.
CPU_MACS_PER_SECOND = 4.0e9


def default_devices() -> dict[MemoryKind, DeviceSpec]:
    """The full device complement of the paper's testbed, per socket."""
    return {
        MemoryKind.DRAM: dram_spec(),
        MemoryKind.PM: pm_spec(),
        MemoryKind.SSD: ssd_spec(),
        MemoryKind.NETWORK: network_spec(),
    }
