"""Bandwidth/latency probe over the simulated devices.

The paper characterizes its PM with NUMACTL + FIO (bandwidth, Fig. 9) and
the Intel Memory Latency Checker (latency).  This module is the simulated
analogue: it sweeps thread counts over a device spec and reports the
aggregate bandwidth per (operation, pattern, locality) combination, which
is what the bench for Fig. 9 prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.devices import (
    GIB,
    AccessPattern,
    DeviceSpec,
    Locality,
    Operation,
)


@dataclass(frozen=True)
class BandwidthprobeResult:
    """One FIO-style probe point.

    Attributes:
        op: read or write.
        pattern: sequential or random.
        locality: local or remote socket.
        threads: number of concurrent probing threads.
        bandwidth_gib_s: aggregate observed bandwidth.
    """

    op: Operation
    pattern: AccessPattern
    locality: Locality
    threads: int
    bandwidth_gib_s: float


def probe_bandwidth(
    device: DeviceSpec,
    thread_counts: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 20, 24, 28),
) -> list[BandwidthprobeResult]:
    """Sweep the eight (op x pattern x locality) curves of Fig. 9.

    Returns one result per (combination, thread count), in a stable order:
    read before write, sequential before random, local before remote.
    """
    results: list[BandwidthprobeResult] = []
    for op in (Operation.READ, Operation.WRITE):
        for pattern in (AccessPattern.SEQUENTIAL, AccessPattern.RANDOM):
            for locality in (Locality.LOCAL, Locality.REMOTE):
                for threads in thread_counts:
                    bandwidth = device.bandwidth(op, pattern, locality, threads)
                    results.append(
                        BandwidthprobeResult(
                            op=op,
                            pattern=pattern,
                            locality=locality,
                            threads=threads,
                            bandwidth_gib_s=bandwidth / GIB,
                        )
                    )
    return results


def probe_latency(device: DeviceSpec) -> dict[tuple[Operation, Locality], float]:
    """MLC-style latency probe: nanoseconds per (operation, locality)."""
    return {
        (op, locality): device.latency(op, locality) * 1e9
        for op in (Operation.READ, Operation.WRITE)
        for locality in (Locality.LOCAL, Locality.REMOTE)
    }


def peak_bandwidth_summary(device: DeviceSpec, threads: int = 28) -> dict[str, float]:
    """Headline ratios the paper quotes from its Fig. 9 analysis.

    Returns a dict with the sequential-vs-random read gaps and the
    local-vs-remote write gaps, so tests can assert the calibration.
    """
    def bw(op: Operation, pattern: AccessPattern, locality: Locality) -> float:
        return device.bandwidth(op, pattern, locality, threads)

    return {
        "seq_local_read_over_rand_local_read": bw(
            Operation.READ, AccessPattern.SEQUENTIAL, Locality.LOCAL
        )
        / bw(Operation.READ, AccessPattern.RANDOM, Locality.LOCAL),
        "seq_remote_read_over_rand_remote_read": bw(
            Operation.READ, AccessPattern.SEQUENTIAL, Locality.REMOTE
        )
        / bw(Operation.READ, AccessPattern.RANDOM, Locality.REMOTE),
        "seq_local_write_over_seq_remote_write": bw(
            Operation.WRITE, AccessPattern.SEQUENTIAL, Locality.LOCAL
        )
        / bw(Operation.WRITE, AccessPattern.SEQUENTIAL, Locality.REMOTE),
        "seq_local_write_over_rand_remote_write": bw(
            Operation.WRITE, AccessPattern.SEQUENTIAL, Locality.LOCAL
        )
        / bw(Operation.WRITE, AccessPattern.RANDOM, Locality.REMOTE),
        "seq_remote_read_over_seq_local_read": bw(
            Operation.READ, AccessPattern.SEQUENTIAL, Locality.REMOTE
        )
        / bw(Operation.READ, AccessPattern.SEQUENTIAL, Locality.LOCAL),
    }
