"""NUMA topology model.

The paper's testbed is a two-socket machine: 18 physical cores, 96 GiB
DRAM and 768 GiB PM per socket.  :class:`NumaTopology` captures the socket
layout and answers the two questions the rest of the system asks:

1. which socket does a given thread run on (thread binding), and
2. is an access from thread *t* to data on socket *s* local or remote.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsim.devices import DeviceSpec, Locality, MemoryKind, default_devices


@dataclass(frozen=True)
class NumaTopology:
    """A symmetric multi-socket NUMA machine.

    Attributes:
        n_sockets: number of NUMA nodes.
        cores_per_socket: physical cores per node.
        devices: per-socket device complement (every socket is assumed to
            carry an identical set of DIMMs, as in the paper's testbed).
    """

    n_sockets: int = 2
    cores_per_socket: int = 18
    devices: dict[MemoryKind, DeviceSpec] = field(default_factory=default_devices)

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ValueError(f"n_sockets must be >= 1, got {self.n_sockets}")
        if self.cores_per_socket < 1:
            raise ValueError(
                f"cores_per_socket must be >= 1, got {self.cores_per_socket}"
            )

    @property
    def total_cores(self) -> int:
        """Total physical core count across all sockets."""
        return self.n_sockets * self.cores_per_socket

    def socket_of_thread(self, thread_id: int, n_threads: int) -> int:
        """Socket a thread is bound to under block-wise binding.

        Threads are bound in contiguous blocks (threads ``0..n/2-1`` on
        socket 0, the rest on socket 1, generalized to ``n_sockets``),
        matching the CPU-binding based computing of NaDP (§III-D).
        """
        if not 0 <= thread_id < n_threads:
            raise ValueError(f"thread_id {thread_id} out of range [0, {n_threads})")
        per_socket = -(-n_threads // self.n_sockets)  # ceil division
        return min(thread_id // per_socket, self.n_sockets - 1)

    def threads_on_socket(self, socket: int, n_threads: int) -> int:
        """Number of threads bound to ``socket`` under block-wise binding."""
        self._check_socket(socket)
        return sum(
            1
            for t in range(n_threads)
            if self.socket_of_thread(t, n_threads) == socket
        )

    def locality(self, thread_socket: int, data_socket: int) -> Locality:
        """Classify an access as local or remote."""
        self._check_socket(thread_socket)
        self._check_socket(data_socket)
        if thread_socket == data_socket:
            return Locality.LOCAL
        return Locality.REMOTE

    def device(self, kind: MemoryKind) -> DeviceSpec:
        """The per-socket device spec of a given tier."""
        return self.devices[kind]

    def capacity(self, kind: MemoryKind) -> int:
        """Aggregate capacity of a tier across all sockets, in bytes."""
        return self.devices[kind].capacity_bytes * self.n_sockets

    def _check_socket(self, socket: int) -> None:
        if not 0 <= socket < self.n_sockets:
            raise ValueError(
                f"socket {socket} out of range [0, {self.n_sockets})"
            )


def paper_testbed() -> NumaTopology:
    """The exact machine of §IV-A: 2 sockets x (18 cores, 96G DRAM, 768G PM)."""
    return NumaTopology(n_sockets=2, cores_per_socket=18)


def cxl_testbed() -> NumaTopology:
    """The same machine with the Optane DIMMs swapped for CXL expanders.

    The paper's conclusion anticipates CXL replacing PM as the capacity
    tier; this topology lets every experiment re-run under that future
    (see ``benchmarks/bench_ext_cxl.py``).
    """
    from repro.memsim.devices import cxl_spec

    devices = default_devices()
    devices[MemoryKind.PM] = cxl_spec()
    return NumaTopology(n_sockets=2, cores_per_socket=18, devices=devices)
