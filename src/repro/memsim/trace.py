"""Cost ledgers for simulated execution.

:class:`CostTrace` accumulates simulated seconds per operation category
(the five SpMM steps of Algorithm 1: ``read_index``, ``get_sparse_nnz``,
``get_dense_nnz``, ``accumulate``, ``write_result``) plus any auxiliary
categories (prefetch maintenance, streaming loads, allocation overhead).
It backs the execution-time breakdown of Fig. 7(a) and the overhead
accounting of §IV-C/§IV-D ("allocation under 1% of runtime", "EaTA+WoFP
overhead below 3.17%").
"""

from __future__ import annotations

from collections import defaultdict


#: Category names for the five steps of Algorithm 1, in execution order.
SPMM_CATEGORIES = (
    "read_index",
    "get_sparse_nnz",
    "get_dense_nnz",
    "accumulate",
    "write_result",
)


class CostTrace:
    """Accumulates simulated seconds and byte counts per category."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = defaultdict(float)
        self._bytes: dict[str, float] = defaultdict(float)

    def charge(self, category: str, seconds: float, nbytes: float = 0.0) -> None:
        """Record ``seconds`` of simulated time against a category."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._seconds[category] += seconds
        self._bytes[category] += nbytes

    def seconds(self, category: str) -> float:
        """Total simulated seconds charged to a category."""
        return self._seconds.get(category, 0.0)

    def bytes_moved(self, category: str) -> float:
        """Total bytes recorded against a category."""
        return self._bytes.get(category, 0.0)

    @property
    def total_seconds(self) -> float:
        """Sum of all charged seconds."""
        return sum(self._seconds.values())

    def breakdown(self) -> dict[str, float]:
        """Per-category seconds, as a plain dict."""
        return dict(self._seconds)

    def fraction(self, category: str) -> float:
        """Share of the total attributable to one category (0 if empty)."""
        total = self.total_seconds
        if total == 0.0:
            return 0.0
        return self.seconds(category) / total

    def merge(self, other: "CostTrace") -> None:
        """Fold another trace's charges into this one.

        Per-thread ledgers are accumulated independently and merged at
        barriers; the exporter merges per-SpMM ledgers the same way.
        """
        for category, seconds in other._seconds.items():
            self._seconds[category] += seconds
        for category, nbytes in other._bytes.items():
            self._bytes[category] += nbytes

    def to_dict(self) -> dict[str, dict[str, float]]:
        """Round-trippable plain-dict form (JSON-serializable)."""
        return {
            "seconds": dict(self._seconds),
            "bytes": dict(self._bytes),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, dict[str, float]]) -> "CostTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        trace = cls()
        for category, seconds in payload.get("seconds", {}).items():
            trace._seconds[category] += float(seconds)
        for category, nbytes in payload.get("bytes", {}).items():
            trace._bytes[category] += float(nbytes)
        return trace

    def reset(self) -> None:
        """Clear all accumulated charges."""
        self._seconds.clear()
        self._bytes.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{category}={seconds:.3g}s"
            for category, seconds in sorted(self._seconds.items())
        )
        return f"CostTrace({parts})"
