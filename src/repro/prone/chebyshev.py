"""Chebyshev expansion of ProNE's Gaussian band-pass spectral filter.

The spectral-propagation stage enhances the initial embedding by applying
``g(L~) X`` where ``g`` is a Gaussian kernel in the graph spectral domain.
Evaluating ``g`` exactly would require an eigendecomposition; ProNE
approximates it with a truncated Chebyshev expansion whose coefficients
are modified Bessel functions ``iv(i, theta)`` — turning the filter into
a chain of SpMM applications of the shifted Laplacian ``M = L - mu*I``
(see :func:`repro.prone.laplacian.chebyshev_operator`).

The recurrence below mirrors the reference ProNE implementation
(``chebyshev_gaussian``), including its sign convention and the final
``A' (X - conv)`` re-aggregation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.special import iv

MatMul = Callable[[np.ndarray], np.ndarray]


def chebyshev_gaussian_filter(
    operator_matmul: MatMul,
    aggregate_matmul: MatMul,
    embedding: np.ndarray,
    order: int = 10,
    theta: float = 0.5,
) -> np.ndarray:
    """Apply the band-pass filter to an embedding matrix.

    Args:
        operator_matmul: computes ``M @ X`` for the shifted Laplacian M.
        aggregate_matmul: computes ``A' @ X`` for the self-looped
            adjacency ``A' = I + A`` (the final aggregation step).
        embedding: (n, d) initial embedding.
        order: Chebyshev truncation order (ProNE default 10).
        theta: kernel bandwidth parameter (the Bessel argument).

    Returns:
        The propagated (n, d) matrix, before the final SVD densification
        (see :func:`repro.prone.model.densify_embedding`).
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    x = np.asarray(embedding, dtype=np.float64)
    if order == 1:
        return aggregate_matmul(x)
    lx0 = x
    lx1 = operator_matmul(x)
    lx1 = 0.5 * operator_matmul(lx1) - x
    conv = iv(0, theta) * lx0
    conv -= 2.0 * iv(1, theta) * lx1
    for i in range(2, order):
        lx2 = operator_matmul(lx1)
        lx2 = (operator_matmul(lx2) - 2.0 * lx1) - lx0
        if i % 2 == 0:
            conv += 2.0 * iv(i, theta) * lx2
        else:
            conv -= 2.0 * iv(i, theta) * lx2
        lx0, lx1 = lx1, lx2
    return aggregate_matmul(x - conv)


def spmm_calls_for_order(order: int) -> int:
    """Number of SpMM applications the filter performs at a given order.

    Useful for cost accounting and tests: ``order == 1`` costs a single
    aggregation; otherwise 2 products seed the recurrence, each further
    term costs 2, and the final aggregation costs 1.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if order == 1:
        return 1
    return 2 + 2 * (order - 2) + 1
