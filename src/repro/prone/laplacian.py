"""Graph-matrix transforms used by ProNE, expressed on CSDB matrices.

All transforms preserve or rebuild the CSDB block structure:

- :func:`row_l1_normalize` keeps the structure (only values change), so
  it is free of re-sorting;
- :func:`add_identity` and :func:`chebyshev_operator` change the sparsity
  pattern (diagonal insertion) and therefore rebuild the blocks.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csdb import CSDBMatrix


def row_l1_normalize(matrix: CSDBMatrix) -> CSDBMatrix:
    """Row-stochastic (random-walk) normalization D^-1 A.

    Rows with zero mass are left as zero rows.
    """
    degrees = matrix.row_degrees()
    if matrix.nnz == 0:
        return matrix.scale(1.0)
    nonzero = degrees > 0
    starts = np.concatenate([[0], np.cumsum(degrees)])[:-1][nonzero]
    sums = np.add.reduceat(matrix.nnz_list, starts)
    row_sum_per_nnz = np.repeat(
        np.where(sums != 0, sums, 1.0), degrees[nonzero]
    )
    values = matrix.nnz_list / row_sum_per_nnz
    return CSDBMatrix(
        matrix.deg_list,
        matrix.deg_ind,
        matrix.col_list,
        values,
        matrix.perm,
        matrix.shape,
    )


def _to_coo(matrix: CSDBMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(original rows, cols, values) triplets of a CSDB matrix."""
    csdb_rows = np.repeat(
        np.arange(matrix.n_rows, dtype=np.int64), matrix.row_degrees()
    )
    return matrix.perm[csdb_rows], matrix.col_list, matrix.nnz_list


def add_identity(matrix: CSDBMatrix, scale: float = 1.0) -> CSDBMatrix:
    """``matrix + scale * I`` (rebuilds the degree blocks)."""
    if matrix.n_rows != matrix.n_cols:
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    rows, cols, vals = _to_coo(matrix)
    n = matrix.n_rows
    diag = np.arange(n, dtype=np.int64)
    return CSDBMatrix.from_coo(
        np.concatenate([rows, diag]),
        np.concatenate([cols, diag]),
        np.concatenate([vals, np.full(n, scale)]),
        matrix.shape,
    )


def chebyshev_operator(adjacency: CSDBMatrix, mu: float = 0.5) -> CSDBMatrix:
    """ProNE's shifted modified Laplacian ``M = L - mu*I``.

    With ``A' = I + A`` and ``DA = l1norm(A')``, the operator is
    ``M = (1 - mu) * I - DA``: the matrix repeatedly applied by the
    Chebyshev recurrence of the spectral-propagation stage.
    """
    if adjacency.n_rows != adjacency.n_cols:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    da = row_l1_normalize(add_identity(adjacency))
    rows, cols, vals = _to_coo(da)
    n = adjacency.n_rows
    diag = np.arange(n, dtype=np.int64)
    return CSDBMatrix.from_coo(
        np.concatenate([rows, diag]),
        np.concatenate([cols, diag]),
        np.concatenate([-vals, np.full(n, 1.0 - mu)]),
        adjacency.shape,
    )
