"""Spectral filter variants for the propagation stage (extension).

ProNE's band-pass Gaussian is one point in a family of spectral
modulators ``g(lambda)`` applied to the embedding through polynomial
expansions in the (shifted) Laplacian.  This module adds the two other
classic choices so the propagation stage can be ablated:

- :func:`heat_kernel_filter` — low-pass ``g(lambda) = exp(-s lambda)``,
  a Taylor expansion in ``L``(smooths embeddings, GraphHeat-style);
- :func:`ppr_filter` — personalized-PageRank low-pass
  ``g(lambda) = alpha / (1 - (1 - alpha)(1 - lambda))``, evaluated as
  the usual power iteration;
- plus ProNE's own :func:`repro.prone.chebyshev.chebyshev_gaussian_filter`
  re-exported for a uniform interface via :func:`make_filter`.

All variants take the same ``(operator_matmul, aggregate_matmul,
embedding)`` signature, so the embedding pipeline and benches can swap
them freely.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.prone.chebyshev import chebyshev_gaussian_filter

MatMul = Callable[[np.ndarray], np.ndarray]


def heat_kernel_filter(
    operator_matmul: MatMul,
    aggregate_matmul: MatMul,
    embedding: np.ndarray,
    order: int = 6,
    s: float = 1.0,
) -> np.ndarray:
    """Heat-kernel smoothing ``exp(-s M) X`` via a Taylor expansion.

    ``M`` is the same shifted Laplacian the Chebyshev filter uses; the
    final aggregation matches ProNE's ``A' (.)`` step so variants stay
    comparable.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if s <= 0:
        raise ValueError(f"s must be > 0, got {s}")
    x = np.asarray(embedding, dtype=np.float64)
    term = x
    total = x.copy()
    for k in range(1, order + 1):
        term = operator_matmul(term) * (-s / k)
        total += term
    return aggregate_matmul(total)


def ppr_filter(
    operator_matmul: MatMul,
    aggregate_matmul: MatMul,
    embedding: np.ndarray,
    order: int = 8,
    alpha: float = 0.15,
) -> np.ndarray:
    """Personalized-PageRank propagation (APPNP-style power iteration).

    ``X_{k+1} = (1 - alpha) P X_k + alpha X_0`` where the propagation
    ``P X`` is derived from the shifted-Laplacian product the pipeline
    already exposes (``P = (1 - mu) I - M`` up to the shift).
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    x0 = np.asarray(embedding, dtype=np.float64)
    x = x0.copy()
    for _ in range(order):
        # operator_matmul applies M = L - mu I; recover the random-walk
        # propagation P X = X - L X = X - (M + mu I) X up to the shift.
        m_x = operator_matmul(x)
        propagated = x - m_x  # (I - M) X ~ (DA + mu I) X
        x = (1.0 - alpha) * propagated + alpha * x0
        # Keep magnitudes in check; the pipeline re-normalizes anyway.
        norm = np.abs(x).max()
        if norm > 0 and not math.isfinite(norm):
            raise FloatingPointError("PPR propagation diverged")
        if norm > 1e6:
            x /= norm
    return aggregate_matmul(x)


#: Registry of propagation filters by name.
FILTERS: dict[str, Callable[..., np.ndarray]] = {
    "gaussian": chebyshev_gaussian_filter,
    "heat": heat_kernel_filter,
    "ppr": ppr_filter,
}


def make_filter(name: str) -> Callable[..., np.ndarray]:
    """Look up a propagation filter by name."""
    try:
        return FILTERS[name]
    except KeyError:
        raise KeyError(
            f"unknown filter {name!r}; expected one of {sorted(FILTERS)}"
        ) from None
