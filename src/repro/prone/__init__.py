"""ProNE (Zhang et al., IJCAI'19) — the embedding model OMeGa hosts.

ProNE is matrix-factorization based and SpMM-dominated (the paper measures
SpMM at ~70% of its runtime), which is why OMeGa adopts it as the model
prototype.  The pipeline has two stages:

1. **Sparse matrix factorization** (:func:`repro.prone.model.prone_smf`):
   a shifted-PMI-style transform of the l1-normalized adjacency matrix is
   factorized with randomized truncated SVD (Halko et al.) to produce the
   initial embedding;
2. **Spectral propagation** (:mod:`repro.prone.chebyshev`): the initial
   embedding is filtered through a Chebyshev expansion of a Gaussian
   band-pass kernel on the modified graph Laplacian.

Every sparse-times-dense product is routed through a caller-supplied
``spmm`` callable, so the OMeGa engine can instrument all of them.
"""

from repro.prone.chebyshev import chebyshev_gaussian_filter
from repro.prone.filters import heat_kernel_filter, make_filter, ppr_filter
from repro.prone.laplacian import (
    add_identity,
    chebyshev_operator,
    row_l1_normalize,
)
from repro.prone.model import prone_embed, prone_smf, smf_matrix
from repro.prone.spectral import spectral_embed, sym_normalize
from repro.prone.tsvd import randomized_tsvd

__all__ = [
    "add_identity",
    "chebyshev_gaussian_filter",
    "chebyshev_operator",
    "heat_kernel_filter",
    "make_filter",
    "ppr_filter",
    "prone_embed",
    "prone_smf",
    "randomized_tsvd",
    "row_l1_normalize",
    "smf_matrix",
    "spectral_embed",
    "sym_normalize",
]
