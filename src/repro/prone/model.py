"""The ProNE model: SMF bootstrap + spectral propagation.

This module ties the pieces together in engine-agnostic form: every
sparse product goes through caller-supplied ``spmm`` callables.  The
reference-faithful parameterization is: negative-sampling exponent 0.75,
Chebyshev order 10, ``mu = 0.2``, ``theta = 0.5``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.formats.csdb import CSDBMatrix
from repro.obs.tracer import NULL_TRACER, SpanTracer
from repro.prone.chebyshev import chebyshev_gaussian_filter
from repro.prone.laplacian import add_identity, chebyshev_operator, row_l1_normalize
from repro.prone.tsvd import embedding_from_factors, randomized_tsvd

MatMulFactory = Callable[[CSDBMatrix], Callable[[np.ndarray], np.ndarray]]


def _plain_matmul_factory(matrix: CSDBMatrix) -> Callable[[np.ndarray], np.ndarray]:
    """Default SpMM routing: the raw CSDB kernel, no instrumentation."""
    return matrix.spmm


@dataclass(frozen=True)
class ProNEParams:
    """Hyper-parameters of ProNE.

    Attributes:
        dim: embedding dimensionality.
        negative_exponent: smoothing exponent of the negative-sampling
            distribution (word2vec's 0.75).
        order: Chebyshev truncation order of the spectral filter.
        mu: Laplacian shift of the band-pass kernel.
        theta: kernel bandwidth (Bessel argument).
        n_oversamples / n_power_iterations: randomized-tSVD accuracy knobs.
        seed: RNG seed of the tSVD range finder.
        spectral_filter: propagation filter — ``"gaussian"`` (ProNE's
            band-pass, the default), ``"heat"`` or ``"ppr"`` (see
            :mod:`repro.prone.filters`).
    """

    dim: int = 32
    negative_exponent: float = 0.75
    order: int = 10
    mu: float = 0.2
    theta: float = 0.5
    n_oversamples: int = 8
    n_power_iterations: int = 2
    seed: int = 0
    spectral_filter: str = "gaussian"


def smf_matrix(adjacency: CSDBMatrix, negative_exponent: float = 0.75) -> CSDBMatrix:
    """ProNE's factorization target: a shifted-PMI transform of D^-1 A.

    Entry-wise (over the adjacency's sparsity pattern):

        F_ij = max(log(p_ij), 0) - log(neg_j),
        p_ij  = A_ij / deg(i),
        neg_j = colsum(P)_j^0.75 / sum_k colsum(P)_k^0.75

    The transform only changes values, so the CSDB block structure is
    reused as-is — no re-sorting.
    """
    tran = row_l1_normalize(adjacency)
    # Column sums of the transition matrix, smoothed.
    colsum = np.zeros(tran.n_cols, dtype=np.float64)
    np.add.at(colsum, tran.col_list, tran.nnz_list)
    neg = colsum**negative_exponent
    total = neg.sum()
    if total > 0:
        neg = neg / total
    neg = np.where(neg > 0, neg, 1.0)
    p = np.where(tran.nnz_list > 0, tran.nnz_list, 1.0)
    values = np.log(p) - np.log(neg[tran.col_list])
    return CSDBMatrix(
        tran.deg_list,
        tran.deg_ind,
        tran.col_list,
        values,
        tran.perm,
        tran.shape,
    )


def prone_smf(
    adjacency: CSDBMatrix,
    params: ProNEParams,
    matmul_factory: MatMulFactory = _plain_matmul_factory,
    tracer: SpanTracer | None = None,
) -> np.ndarray:
    """Stage 1: initial embedding by randomized tSVD of the SMF matrix."""
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("smf_matrix"):
        f = smf_matrix(adjacency, params.negative_exponent)
        ft = f.transpose()
    with tracer.span("tsvd", dim=params.dim):
        u, s, _ = randomized_tsvd(
            matmul_factory(f),
            matmul_factory(ft),
            f.shape,
            params.dim,
            n_oversamples=params.n_oversamples,
            n_power_iterations=params.n_power_iterations,
            seed=params.seed,
        )
        return embedding_from_factors(u, s)


def densify_embedding(matrix: np.ndarray, dim: int) -> np.ndarray:
    """ProNE's final densification: economy SVD, ``U * sqrt(s)``, l2 norm."""
    u, s, _ = np.linalg.svd(matrix, full_matrices=False)
    return embedding_from_factors(u[:, :dim], s[:dim])


def prone_propagate(
    adjacency: CSDBMatrix,
    embedding: np.ndarray,
    params: ProNEParams,
    matmul_factory: MatMulFactory = _plain_matmul_factory,
    tracer: SpanTracer | None = None,
) -> np.ndarray:
    """Stage 2: spectral propagation through the configured filter."""
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("laplacian"):
        operator = chebyshev_operator(adjacency, mu=params.mu)
        aggregate = add_identity(adjacency)
    operator_matmul = matmul_factory(operator)
    aggregate_matmul = matmul_factory(aggregate)
    with tracer.span(
        "chebyshev_filter", filter=params.spectral_filter, order=params.order
    ):
        if params.spectral_filter == "gaussian":
            filtered = chebyshev_gaussian_filter(
                operator_matmul,
                aggregate_matmul,
                embedding,
                order=params.order,
                theta=params.theta,
            )
        elif params.spectral_filter == "heat":
            from repro.prone.filters import heat_kernel_filter

            filtered = heat_kernel_filter(
                operator_matmul,
                aggregate_matmul,
                embedding,
                order=params.order,
                s=params.theta,
            )
        elif params.spectral_filter == "ppr":
            from repro.prone.filters import ppr_filter

            filtered = ppr_filter(
                operator_matmul, aggregate_matmul, embedding, order=params.order
            )
        else:
            raise ValueError(
                f"unknown spectral_filter {params.spectral_filter!r};"
                " expected 'gaussian', 'heat' or 'ppr'"
            )
    with tracer.span("densify"):
        return densify_embedding(filtered, params.dim)


def prone_embed(
    adjacency: CSDBMatrix,
    params: ProNEParams | None = None,
    matmul_factory: MatMulFactory = _plain_matmul_factory,
    tracer: SpanTracer | None = None,
) -> np.ndarray:
    """Full ProNE: SMF bootstrap followed by spectral propagation."""
    params = params or ProNEParams()
    initial = prone_smf(adjacency, params, matmul_factory, tracer=tracer)
    return prone_propagate(
        adjacency, initial, params, matmul_factory, tracer=tracer
    )
