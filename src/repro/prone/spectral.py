"""Laplacian-eigenmaps embedding — a second MF-family model on the engine.

The paper's taxonomy (Fig. 2) groups ProNE with the matrix-factorization
methods; this module adds the classic spectral baseline of that family so
the library demonstrates model generality: embed nodes with the leading
singular vectors of the symmetrically normalized adjacency
``S = D^{-1/2} A D^{-1/2}`` (equivalently, the bottom eigenvectors of the
normalized Laplacian).  All products run through the same instrumentable
``matmul_factory`` as ProNE, so OMeGa's optimizations apply unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csdb import CSDBMatrix
from repro.prone.model import MatMulFactory, _plain_matmul_factory
from repro.prone.tsvd import embedding_from_factors, randomized_tsvd


def sym_normalize(matrix: CSDBMatrix) -> CSDBMatrix:
    """Symmetric normalization ``D^{-1/2} A D^{-1/2}``.

    Values change, structure is preserved (no re-sorting).  Zero-degree
    rows/columns keep zero entries.
    """
    degrees = np.zeros(matrix.n_rows, dtype=np.float64)
    csdb_rows = np.repeat(
        np.arange(matrix.n_rows, dtype=np.int64), matrix.row_degrees()
    )
    original_rows = matrix.perm[csdb_rows]
    np.add.at(degrees, original_rows, matrix.nnz_list)
    col_mass = np.zeros(matrix.n_cols, dtype=np.float64)
    np.add.at(col_mass, matrix.col_list, matrix.nnz_list)
    with np.errstate(divide="ignore"):
        inv_sqrt_row = np.where(
            degrees > 0, 1.0 / np.sqrt(np.abs(degrees)), 0.0
        )
        inv_sqrt_col = np.where(
            col_mass > 0, 1.0 / np.sqrt(np.abs(col_mass)), 0.0
        )
    values = (
        matrix.nnz_list
        * inv_sqrt_row[original_rows]
        * inv_sqrt_col[matrix.col_list]
    )
    return CSDBMatrix(
        matrix.deg_list,
        matrix.deg_ind,
        matrix.col_list,
        values,
        matrix.perm,
        matrix.shape,
    )


def spectral_embed(
    adjacency: CSDBMatrix,
    dim: int = 32,
    n_oversamples: int = 8,
    n_power_iterations: int = 4,
    seed: int = 0,
    matmul_factory: MatMulFactory = _plain_matmul_factory,
) -> np.ndarray:
    """Laplacian-eigenmaps-style embedding via randomized tSVD of S.

    Power iterations sharpen toward the dominant spectrum of S (the
    smallest normalized-Laplacian eigenvalues).  Returns an l2-normalized
    (|V|, dim) embedding; isolated nodes embed to zero.
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    s = sym_normalize(adjacency)
    st = s.transpose()
    u, singular_values, _ = randomized_tsvd(
        matmul_factory(s),
        matmul_factory(st),
        s.shape,
        rank=dim,
        n_oversamples=n_oversamples,
        n_power_iterations=n_power_iterations,
        seed=seed,
    )
    return embedding_from_factors(u, singular_values)
