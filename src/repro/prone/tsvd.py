"""Randomized truncated SVD (Halko, Martinsson, Tropp 2011).

ProNE's sparse-matrix-factorization stage uses randomized tSVD, whose
cost is dominated by the sparse-times-dense products — exactly the SpMM
operations OMeGa accelerates.  The implementation therefore takes the
products as callables (``matmul(X) = A @ X`` and ``rmatmul(Y) = A.T @ Y``)
so the caller can route them through the instrumented engine; the small
dense factorizations (QR, economy SVD) run in numpy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

MatMul = Callable[[np.ndarray], np.ndarray]


def randomized_tsvd(
    matmul: MatMul,
    rmatmul: MatMul,
    shape: tuple[int, int],
    rank: int,
    n_oversamples: int = 8,
    n_power_iterations: int = 2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD ``A ~= U diag(s) Vt`` via randomized range finding.

    Args:
        matmul: computes ``A @ X`` for a dense (n_cols, k) X.
        rmatmul: computes ``A.T @ Y`` for a dense (n_rows, k) Y.
        shape: (n_rows, n_cols) of A.
        rank: target rank d.
        n_oversamples: extra random directions for range accuracy.
        n_power_iterations: subspace (power) iterations sharpening the
            spectrum; each costs one matmul + one rmatmul.
        seed: RNG seed for the Gaussian test matrix.

    Returns:
        (U, s, Vt) with U (n_rows, rank), s (rank,), Vt (rank, n_cols).
    """
    n_rows, n_cols = shape
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    if rank > min(n_rows, n_cols):
        raise ValueError(
            f"rank {rank} exceeds min(shape) = {min(n_rows, n_cols)}"
        )
    k = min(rank + n_oversamples, min(n_rows, n_cols))
    rng = np.random.default_rng(seed)
    omega = rng.standard_normal((n_cols, k))
    y = matmul(omega)
    # Power iterations with intermediate orthonormalization for stability.
    for _ in range(n_power_iterations):
        y, _ = np.linalg.qr(y)
        z = rmatmul(y)
        z, _ = np.linalg.qr(z)
        y = matmul(z)
    q, _ = np.linalg.qr(y)
    # Project: B = Q^T A  (computed as (A^T Q)^T, one rmatmul).
    b = rmatmul(q).T
    u_small, s, vt = np.linalg.svd(b, full_matrices=False)
    u = q @ u_small
    return u[:, :rank], s[:rank], vt[:rank]


def embedding_from_factors(u: np.ndarray, s: np.ndarray) -> np.ndarray:
    """ProNE's embedding post-processing: ``U * sqrt(s)``, l2-normalized."""
    emb = u * np.sqrt(np.maximum(s, 0.0))
    norms = np.linalg.norm(emb, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return emb / norms
