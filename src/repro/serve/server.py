"""The resilient embedding server.

:class:`EmbeddingServer` replays a request trace against a warmed
:class:`~repro.serve.backend.EmbeddingBackend` on a single
:class:`~repro.memsim.clock.VirtualClock`, as a deterministic
discrete-event loop:

1. **Admission** — arrivals enter a bounded queue; beyond
   ``queue_limit`` they are shed with a typed
   :class:`~repro.serve.errors.QueueFullError` (disable shedding and
   the queue is unbounded — the naive arm of the tail-latency bench).
   Injected ``request_burst`` faults duplicate an arrival ``count``
   times, spiking the queue.
2. **Deadline enforcement** — a request whose budget expired while
   queued is rejected before any service is spent on it; a request
   whose service finishes late completes as ``deadline_exceeded``.
3. **Degradation ladder** — per request class, e.g. full ProNE →
   spectral-propagation-only → stale checkpoint rows.  Compute rungs go
   through the :class:`~repro.serve.breaker.CircuitBreaker`; stalls
   burn the stall budget and count as breaker failures, an open breaker
   skips straight down to the cached tier.
4. **Accounting** — every submitted request (bursts included) resolves
   to exactly one response: served (with its fidelity), shed,
   deadline-exceeded, or failed (only possible with a ladder that does
   not end in the cached tier).

``healthz()`` / ``readyz()`` expose the liveness/readiness view a load
balancer would poll, and every decision is counted in ``serve.*``
metrics plus latency histograms per request class.
"""

from __future__ import annotations

import secrets
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.faults import BackendStallError, FaultInjector
from repro.memsim.clock import VirtualClock
from repro.obs.forensics.records import RequestForensics
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, SpanTracer
from repro.serve.backend import (
    FIDELITY_FULL,
    FIDELITY_LEVELS,
    FIDELITY_PROPAGATION,
    FIDELITY_STALE,
    EmbeddingBackend,
)
from repro.serve.breaker import (
    STATE_OPEN,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.serve.errors import DeadlineExceededError, QueueFullError
from repro.serve.trace import RequestTrace, ServeRequest
from repro.shard.errors import PartialResultError

#: Response statuses (the accounting buckets).
STATUS_SERVED = "served"
STATUS_SHED = "shed"
STATUS_DEADLINE = "deadline_exceeded"
STATUS_FAILED = "failed"
RESPONSE_STATUSES = (
    STATUS_SERVED,
    STATUS_SHED,
    STATUS_DEADLINE,
    STATUS_FAILED,
)

#: Default degradation ladders per request class: interactive traffic
#: may fall all the way to the cache; batch scoring skips the
#: half-fresh middle rung (full fidelity or the cache).
DEFAULT_LADDERS: dict[str, tuple[str, ...]] = {
    "interactive": (FIDELITY_FULL, FIDELITY_PROPAGATION, FIDELITY_STALE),
    "batch": (FIDELITY_FULL, FIDELITY_STALE),
}


@dataclass(frozen=True)
class ServePolicy:
    """Admission, deadline and resilience knobs of one server.

    Attributes:
        queue_limit: bound of the admission queue (with shedding on).
        stall_budget_s: how long one compute-tier call may hang before
            it is abandoned (and counted as a breaker failure).
        breaker: circuit-breaker thresholds.
        breaker_enabled: gate compute rungs through the breaker.
        shedding_enabled: enforce ``queue_limit`` (off = unbounded).
        deadline_aware: skip a compute rung whose predicted (healthy)
            cost would already blow the request's deadline — serve a
            degraded answer in time instead of a fresh one late.
        ladders: per-class fidelity ladders (missing classes get the
            interactive ladder).
    """

    queue_limit: int = 64
    stall_budget_s: float = 0.05
    breaker: BreakerPolicy = BreakerPolicy()
    breaker_enabled: bool = True
    shedding_enabled: bool = True
    deadline_aware: bool = True
    ladders: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LADDERS)
    )

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.stall_budget_s <= 0:
            raise ValueError(
                f"stall_budget_s must be > 0, got {self.stall_budget_s}"
            )
        for klass, ladder in self.ladders.items():
            if not ladder:
                raise ValueError(f"empty ladder for class {klass!r}")
            for rung in ladder:
                if rung not in FIDELITY_LEVELS:
                    raise ValueError(
                        f"unknown fidelity {rung!r} in {klass!r} ladder"
                    )

    def ladder_for(self, klass: str) -> tuple[str, ...]:
        """The fidelity ladder of a request class."""
        return tuple(self.ladders.get(klass, DEFAULT_LADDERS["interactive"]))

    @classmethod
    def calibrated(cls, mean_service_s: float, **overrides: Any) -> "ServePolicy":
        """Scale the time-based knobs to a backend's mean service time.

        Absolute defaults (50 ms stall budget, 5 s recovery window) suit
        wall-clock services; a simulated backend may serve a request in
        microseconds, which would leave a tripped breaker open for the
        whole trace.  This picks a stall budget of 50 mean service times
        and a recovery window of 200, which keeps the open/half-open
        cadence on the same scale as the traffic.  Any explicit
        ``ServePolicy`` field passed as a keyword wins.
        """
        if mean_service_s <= 0:
            raise ValueError(
                f"mean_service_s must be > 0, got {mean_service_s}"
            )
        defaults: dict[str, Any] = {
            "stall_budget_s": 50.0 * mean_service_s,
            "breaker": BreakerPolicy(
                recovery_seconds=200.0 * mean_service_s
            ),
        }
        defaults.update(overrides)
        return cls(**defaults)


@dataclass(frozen=True)
class ServeResponse:
    """Terminal outcome of one submitted request."""

    request_id: str
    klass: str
    status: str
    fidelity: str | None = None
    arrival_s: float = 0.0
    completed_s: float | None = None
    error: str | None = None
    #: Rows served from a stale shard tier (checkpoint hedge or a
    #: restarted shard that has not caught up); 0 for monolithic
    #: backends.  A served-but-stale response is degraded *within* its
    #: fidelity rung rather than down the ladder.
    stale_rows: int = 0
    #: Server-assigned trace id, unique per submitted request (bursts
    #: included), so every served/shed/failed request is queryable in
    #: the telemetry stream.
    trace_id: str | None = None
    #: Admission-queue wait vs execution breakdown of the latency
    #: (both zero for shed requests, which never dequeue).
    queue_wait_s: float = 0.0
    exec_s: float = 0.0
    #: Degradation rung whose backend call actually produced the rows —
    #: unlike ``fidelity``, it survives late completion (a
    #: ``deadline_exceeded`` response nulls ``fidelity`` but keeps the
    #: rung it burned its budget on).
    rung: str | None = None

    @property
    def latency_s(self) -> float | None:
        """End-to-end latency (None for shed requests)."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.arrival_s


@dataclass
class ServeReport:
    """Everything one trace replay produced."""

    responses: list[ServeResponse] = field(default_factory=list)
    submitted: int = 0
    warmup_sim_seconds: float = 0.0
    finished_at_s: float = 0.0

    def count(self, status: str) -> int:
        """How many responses ended in ``status``."""
        return sum(1 for r in self.responses if r.status == status)

    @property
    def served(self) -> int:
        return self.count(STATUS_SERVED)

    @property
    def shed(self) -> int:
        return self.count(STATUS_SHED)

    @property
    def deadline_exceeded(self) -> int:
        return self.count(STATUS_DEADLINE)

    @property
    def failed(self) -> int:
        return self.count(STATUS_FAILED)

    @property
    def balanced(self) -> bool:
        """served + shed + deadline-exceeded + failed == submitted."""
        return len(self.responses) == self.submitted and (
            self.served + self.shed + self.deadline_exceeded + self.failed
            == self.submitted
        )

    def fidelity_counts(self) -> dict[str, int]:
        """Served requests per fidelity level."""
        counts: dict[str, int] = {}
        for response in self.responses:
            if response.status == STATUS_SERVED:
                counts[response.fidelity] = counts.get(response.fidelity, 0) + 1
        return counts

    def latencies(
        self, statuses: tuple[str, ...] = (STATUS_SERVED,)
    ) -> np.ndarray:
        """Latencies of completed responses with the given statuses."""
        values = [
            r.latency_s
            for r in self.responses
            if r.status in statuses and r.latency_s is not None
        ]
        return np.asarray(values, dtype=np.float64)

    def latency_percentile(
        self, q: float, statuses: tuple[str, ...] = (STATUS_SERVED,)
    ) -> float:
        """Latency percentile over the given statuses (0 when empty)."""
        values = self.latencies(statuses)
        if len(values) == 0:
            return 0.0
        return float(np.percentile(values, q))

    def summary(self) -> dict[str, Any]:
        """JSON-able headline numbers (the ``serve-sim`` output)."""
        completed = (STATUS_SERVED, STATUS_DEADLINE)
        return {
            "submitted": self.submitted,
            "served": self.served,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed,
            "balanced": self.balanced,
            "fidelity": self.fidelity_counts(),
            "p50_latency_s": self.latency_percentile(50, completed),
            "p99_latency_s": self.latency_percentile(99, completed),
            "warmup_sim_seconds": self.warmup_sim_seconds,
            "finished_at_s": self.finished_at_s,
        }


class EmbeddingServer:
    """Deterministic single-worker serving loop over a request trace."""

    def __init__(
        self,
        backend: EmbeddingBackend,
        policy: ServePolicy | None = None,
        clock: VirtualClock | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        faults: FaultInjector | None = None,
        stream: Any | None = None,
        snapshot_every: int = 50,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.backend = backend
        self.policy = policy or ServePolicy()
        self.clock = clock or VirtualClock()
        self.metrics = metrics if metrics is not None else backend.metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults if faults is not None else backend.faults
        #: Live :class:`~repro.obs.live.TelemetryStream` to feed — one
        #: ``serve_request`` event per response plus a ``serve_snapshot``
        #: every ``snapshot_every`` responses (what ``repro top`` tails).
        self.stream = stream
        if stream is not None:
            # Incident (`shard_event`) records must land on the same
            # stream as the request forensics so `repro why` can join
            # them; propagate to a sharded backend that was built
            # without one.  The shard manager reads its stream at emit
            # time, so this works even after warm_up.
            if getattr(backend, "stream", False) is None:
                backend.stream = stream
            shards = getattr(backend, "shards", None)
            if shards is not None and shards.stream is None:
                shards.stream = stream
        self.snapshot_every = snapshot_every
        self.breaker = CircuitBreaker(
            self.policy.breaker,
            clock=lambda: self.clock.now,
            metrics=self.metrics,
            name="backend",
        )
        self._pending: deque[ServeRequest] = deque()
        # Per-server token so trace ids stay unique across concurrently
        # replaying servers that share one metrics registry.
        self._trace_token = secrets.token_hex(4)
        self._trace_seq = 0
        self._trace_ids: dict[str, str] = {}
        # Touch the counters probes and smoke checks read, so they are
        # present (at zero) in every telemetry export.
        self.metrics.counter("serve.unhandled_exceptions")
        self.metrics.counter("serve.submitted")
        self.metrics.gauge("serve.queue_depth").set(0)

    # -- probes ----------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        """Liveness view: is the server making progress safely?"""
        unhandled = self.metrics.value("serve.unhandled_exceptions")
        return {
            "healthy": unhandled == 0,
            "unhandled_exceptions": int(unhandled),
            "breaker_state": self.breaker.state,
            "breaker_trips": self.breaker.trips,
            "queue_depth": len(self._pending),
            "sim_now_s": self.clock.now,
        }

    def readyz(self) -> dict[str, Any]:
        """Readiness view: should a balancer route traffic here?"""
        queue_ok = (
            not self.policy.shedding_enabled
            or len(self._pending) < self.policy.queue_limit
        )
        breaker_ok = self.breaker.state != STATE_OPEN
        return {
            "ready": self.backend.warm and queue_ok and breaker_ok,
            "backend_warm": self.backend.warm,
            "queue_has_capacity": queue_ok,
            "breaker_state": self.breaker.state,
        }

    # -- the event loop --------------------------------------------------

    def run_trace(self, trace: RequestTrace) -> ServeReport:
        """Replay a trace to completion; every request is accounted for."""
        report = ServeReport()
        if not self.backend.warm:
            report.warmup_sim_seconds = self.backend.warm_up()
        self._pending.clear()
        requests = list(trace.requests)
        index = 0
        with self.tracer.span("serve_trace", n_requests=len(requests)):
            while index < len(requests) or self._pending:
                if not self._pending:
                    self.clock.advance_to(requests[index].arrival_s)
                index = self._admit(requests, index, report)
                if not self._pending:
                    continue
                request = self._pending.popleft()
                self._update_queue_gauge()
                try:
                    self._handle(request, report)
                except Exception as exc:
                    self.metrics.counter("serve.unhandled_exceptions").inc()
                    self._respond(
                        report,
                        ServeResponse(
                            request_id=request.request_id,
                            klass=request.klass,
                            status=STATUS_FAILED,
                            arrival_s=request.arrival_s,
                            completed_s=self.clock.now,
                            error=type(exc).__name__,
                        ),
                    )
        report.finished_at_s = self.clock.now
        self._emit_snapshot()
        self.tracer.record(
            "serve_summary",
            submitted=report.submitted,
            served=report.served,
            shed=report.shed,
            deadline_exceeded=report.deadline_exceeded,
            breaker_trips=self.breaker.trips,
        )
        return report

    # -- admission -------------------------------------------------------

    def _admit(
        self, requests: list[ServeRequest], index: int, report: ServeReport
    ) -> int:
        """Move every due arrival into the queue (or shed it)."""
        while index < len(requests) and (
            requests[index].arrival_s <= self.clock.now
        ):
            request = requests[index]
            index += 1
            arrivals = [request]
            if self.faults is not None:
                burst = self.faults.take_request_burst()
                if burst is not None:
                    self.tracer.record(
                        "request_burst", count=burst.count,
                        at=request.request_id,
                    )
                    arrivals.extend(
                        ServeRequest(
                            request_id=f"{request.request_id}.b{i}",
                            arrival_s=request.arrival_s,
                            klass=request.klass,
                            n_nodes=request.n_nodes,
                            deadline_s=request.deadline_s,
                        )
                        for i in range(burst.count)
                    )
            for arrival in arrivals:
                report.submitted += 1
                self._trace_ids[arrival.request_id] = self._next_trace_id()
                self.metrics.counter("serve.submitted").inc()
                if (
                    self.policy.shedding_enabled
                    and len(self._pending) >= self.policy.queue_limit
                ):
                    error = QueueFullError(
                        arrival.request_id, self.policy.queue_limit
                    )
                    self._respond(
                        report,
                        ServeResponse(
                            request_id=arrival.request_id,
                            klass=arrival.klass,
                            status=STATUS_SHED,
                            arrival_s=arrival.arrival_s,
                            error=type(error).__name__,
                        ),
                    )
                else:
                    self._pending.append(arrival)
            self._update_queue_gauge()
        return index

    def _update_queue_gauge(self) -> None:
        depth = len(self._pending)
        self.metrics.gauge("serve.queue_depth").set(depth)
        peak = self.metrics.gauge("serve.queue_peak")
        if depth > peak.value:
            peak.set(depth)

    # -- per-request handling --------------------------------------------

    def _handle(self, request: ServeRequest, report: ServeReport) -> None:
        deadline_at = request.arrival_s + request.deadline_s
        # Everything from arrival to this dequeue moment is admission
        # wait; everything after it is execution.  The forensics
        # collector shadows each clock advance the request pays for, so
        # its blame buckets sum to the end-to-end simulated latency.
        handled_at = self.clock.now
        queue_wait = max(0.0, handled_at - request.arrival_s)
        forensics = RequestForensics(
            request_id=request.request_id,
            klass=request.klass,
            arrival_s=request.arrival_s,
            deadline_s=request.deadline_s,
            n_nodes=request.n_nodes,
        )
        forensics.begin_handling(handled_at)
        if self.clock.now >= deadline_at:
            # The budget died in the queue: reject before spending any
            # service on it (the shedding path's cheaper sibling).
            error = DeadlineExceededError(
                request.request_id,
                request.deadline_s,
                self.clock.now - request.arrival_s,
            )
            self._respond(
                report,
                ServeResponse(
                    request_id=request.request_id,
                    klass=request.klass,
                    status=STATUS_DEADLINE,
                    arrival_s=request.arrival_s,
                    completed_s=self.clock.now,
                    error=type(error).__name__,
                    queue_wait_s=queue_wait,
                ),
                forensics=forensics,
            )
            return
        fidelity, stale_rows = self._serve_ladder(
            request, deadline_at, forensics
        )
        if fidelity is None:
            self._respond(
                report,
                ServeResponse(
                    request_id=request.request_id,
                    klass=request.klass,
                    status=STATUS_FAILED,
                    arrival_s=request.arrival_s,
                    completed_s=self.clock.now,
                    error=BackendStallError.__name__,
                    queue_wait_s=queue_wait,
                    exec_s=self.clock.now - handled_at,
                ),
                forensics=forensics,
            )
            return
        completed = self.clock.now
        late = completed > deadline_at
        self._respond(
            report,
            ServeResponse(
                request_id=request.request_id,
                klass=request.klass,
                status=STATUS_DEADLINE if late else STATUS_SERVED,
                fidelity=None if late else fidelity,
                arrival_s=request.arrival_s,
                completed_s=completed,
                error=DeadlineExceededError.__name__ if late else None,
                stale_rows=stale_rows,
                queue_wait_s=queue_wait,
                exec_s=completed - handled_at,
                rung=fidelity,
            ),
            forensics=forensics,
        )

    def _serve_ladder(
        self,
        request: ServeRequest,
        deadline_at: float,
        forensics: RequestForensics,
    ) -> tuple[str | None, int]:
        """Walk the class ladder; returns (served fidelity, stale rows)."""
        for rung in self.policy.ladder_for(request.klass):
            if rung == FIDELITY_STALE:
                response = self.backend.serve_cached(request.n_nodes)
                forensics.record_backend(rung, response, self.clock.now)
                self.clock.advance(response.sim_seconds)
                return rung, response.stale_rows
            if self.policy.deadline_aware:
                predicted = self.backend.compute_cost(request.n_nodes, rung)
                if self.clock.now + predicted > deadline_at:
                    self.metrics.counter(
                        "serve.degraded", reason="deadline"
                    ).inc()
                    forensics.record_skip(rung, "deadline", self.clock.now)
                    continue
            if self.policy.breaker_enabled and not self.breaker.allow():
                self.metrics.counter(
                    "serve.degraded", reason="breaker_open"
                ).inc()
                forensics.record_skip(rung, "breaker_open", self.clock.now)
                continue
            try:
                response = self.backend.serve(
                    request.n_nodes,
                    rung,
                    self.policy.stall_budget_s,
                    sim_now=self.clock.now,
                )
            except BackendStallError as stall:
                # The call hung; we waited out the stall budget, then
                # abandoned it and fell one rung down the ladder.
                forensics.record_stall(rung, stall.seconds, self.clock.now)
                self.clock.advance(stall.seconds)
                self.breaker.record_failure()
                self.metrics.counter(
                    "serve.degraded", reason="backend_stall"
                ).inc()
                continue
            except PartialResultError:
                # Part of the sharded gather had neither a live worker
                # nor a checkpoint.  A per-shard hole is not a backend
                # failure — the breaker stays untouched, the request
                # falls one rung (usually onto the global stale tier).
                self.metrics.counter(
                    "serve.degraded", reason="shard_partial"
                ).inc()
                forensics.record_skip(rung, "shard_partial", self.clock.now)
                continue
            forensics.record_backend(rung, response, self.clock.now)
            self.clock.advance(response.sim_seconds)
            self.breaker.record_success()
            if response.stale_rows > 0:
                # Served on this rung, but part of the gather came from
                # a stale shard tier: degraded within the rung.
                self.metrics.counter(
                    "serve.degraded", reason="shard_stale"
                ).inc()
            return rung, response.stale_rows
        return None, 0

    def _next_trace_id(self) -> str:
        """Unique per-request trace id (assigned at submission)."""
        self._trace_seq += 1
        return f"req-{self._trace_token}-{self._trace_seq:06d}"

    def _emit_snapshot(self) -> None:
        """Force-flushed snapshot of the live serving state."""
        if self.stream is None:
            return
        from repro.obs.live import build_serve_snapshot

        self.stream.emit(
            build_serve_snapshot(
                self.metrics,
                sim_now_s=self.clock.now,
                breaker_state=self.breaker.state,
                queue_depth=len(self._pending),
            )
        )
        self.stream.flush()

    def _respond(
        self,
        report: ServeReport,
        response: ServeResponse,
        forensics: RequestForensics | None = None,
    ) -> None:
        trace_id = self._trace_ids.pop(response.request_id, None)
        if trace_id is None:
            trace_id = self._next_trace_id()
        response = replace(response, trace_id=trace_id)
        report.responses.append(response)
        self.metrics.counter(
            "serve.responses", status=response.status, klass=response.klass
        ).inc()
        if response.status == STATUS_SERVED:
            self.metrics.counter(
                "serve.served", fidelity=response.fidelity
            ).inc()
        latency = response.latency_s
        if latency is not None:
            self.metrics.histogram(
                "serve.latency", klass=response.klass
            ).observe(latency, exemplar=trace_id)
        if forensics is not None:
            # Blame seconds are counted even without a stream attached:
            # they are what `repro diff` gates and perf-gate publishes.
            for category, seconds in forensics.blame.items():
                self.metrics.counter(
                    "serve.blame_seconds",
                    klass=response.klass,
                    category=category,
                ).inc(max(0.0, seconds))
        if self.stream is not None:
            if forensics is None:
                # Shed (or handler-torn) requests still leave a root
                # node, so every submitted request is reconstructable.
                forensics = RequestForensics(
                    request_id=response.request_id,
                    klass=response.klass,
                    arrival_s=response.arrival_s,
                    deadline_s=0.0,
                )
                if response.status == STATUS_FAILED:
                    forensics.partial = True
            for record in forensics.to_records(
                trace_id,
                response.status,
                response.fidelity,
                response.completed_s,
            ):
                self.stream.emit(record)
            self.stream.emit(
                {
                    "type": "serve_request",
                    "trace_id": trace_id,
                    "request_id": response.request_id,
                    "klass": response.klass,
                    "status": response.status,
                    "fidelity": response.fidelity,
                    "latency_s": latency,
                    "stale_rows": response.stale_rows,
                    "sim_now_s": self.clock.now,
                    "queue_wait_s": response.queue_wait_s,
                    "exec_s": response.exec_s,
                    "rung": response.rung,
                }
            )
            if len(report.responses) % self.snapshot_every == 0:
                self._emit_snapshot()
