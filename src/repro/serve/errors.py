"""Typed rejections of the resilient embedding server.

Every non-served outcome carries a precise error type, so clients (and
the accounting in :class:`~repro.serve.server.ServeReport`) can tell
load shedding from deadline misses from breaker rejections.  Backend
stalls raise :class:`~repro.faults.BackendStallError` and an open
breaker raises :class:`~repro.serve.breaker.CircuitOpenError`; both are
handled inside the server's degradation ladder rather than surfacing to
clients.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class of serving-layer rejections."""


class QueueFullError(ServeError):
    """The admission queue was at its bound; the request was shed."""

    def __init__(self, request_id: str, queue_limit: int) -> None:
        super().__init__(
            f"request {request_id!r} shed: admission queue full"
            f" (limit {queue_limit})"
        )
        self.request_id = request_id
        self.queue_limit = queue_limit


class DeadlineExceededError(ServeError):
    """The request's latency budget expired before it was served."""

    def __init__(
        self, request_id: str, deadline_s: float, elapsed_s: float
    ) -> None:
        super().__init__(
            f"request {request_id!r} exceeded its {deadline_s:.4f}s deadline"
            f" ({elapsed_s:.4f}s elapsed)"
        )
        self.request_id = request_id
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
