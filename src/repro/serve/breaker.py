"""Circuit breaker around the embed/stream backend.

The classic closed → open → half-open state machine, on the simulated
clock: repeated backend failures (stalls, injected faults) trip the
breaker, which then fails fast — the server degrades to the cached tier
instead of burning a stall timeout per request.  After a recovery window
the breaker admits probe requests; enough consecutive probe successes
close it again, one probe failure re-opens it.

Every transition is counted in the ``serve.breaker.*`` metric family and
the current state is exported as a gauge, so a telemetry file tells the
whole story of a chaos run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import MetricsRegistry

#: Breaker states.
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"
BREAKER_STATES = (STATE_CLOSED, STATE_OPEN, STATE_HALF_OPEN)

#: Gauge encoding of the states (0 = healthy, 2 = tripped).
_STATE_CODES = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}


class CircuitOpenError(RuntimeError):
    """A call was rejected because the breaker is open."""

    def __init__(self, name: str, retry_after_s: float) -> None:
        super().__init__(
            f"circuit {name!r} is open; retry in {retry_after_s:.3f}s"
        )
        self.name = name
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs of one :class:`CircuitBreaker`.

    Attributes:
        failure_threshold: consecutive failures that trip a closed
            breaker.
        recovery_seconds: how long an open breaker rejects calls before
            admitting half-open probes.
        half_open_probes: consecutive probe successes needed to close a
            half-open breaker.
    """

    failure_threshold: int = 3
    recovery_seconds: float = 5.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.recovery_seconds <= 0:
            raise ValueError(
                f"recovery_seconds must be > 0, got {self.recovery_seconds}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """Failure-counting breaker on a simulated clock.

    Args:
        policy: thresholds and recovery window.
        clock: zero-argument callable returning the current simulated
            time (e.g. a :class:`repro.memsim.clock.VirtualClock`'s
            ``now`` via ``lambda: clock.now``).
        metrics: registry receiving the ``serve.breaker.*`` series.
        name: label distinguishing multiple breakers in one registry.
    """

    def __init__(
        self,
        policy: BreakerPolicy | None = None,
        clock: Callable[[], float] = lambda: 0.0,
        metrics: MetricsRegistry | None = None,
        name: str = "backend",
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.name = name
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self._sync_gauge()

    # -- state -----------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, refreshing open → half-open on recovery expiry."""
        self._maybe_enter_half_open()
        return self._state

    @property
    def trips(self) -> int:
        """How many times the breaker has opened."""
        return int(self.metrics.value("serve.breaker.trips", breaker=self.name))

    def _sync_gauge(self) -> None:
        self.metrics.gauge("serve.breaker.state", breaker=self.name).set(
            _STATE_CODES[self._state]
        )

    def _transition(self, to_state: str) -> None:
        if to_state == self._state:
            return
        self.metrics.counter(
            "serve.breaker.transitions",
            breaker=self.name,
            from_state=self._state,
            to_state=to_state,
        ).inc()
        if to_state == STATE_OPEN:
            self.metrics.counter("serve.breaker.trips", breaker=self.name).inc()
            self._opened_at = self.clock()
        self._state = to_state
        self._sync_gauge()

    def _maybe_enter_half_open(self) -> None:
        if (
            self._state == STATE_OPEN
            and self.clock() >= self._opened_at + self.policy.recovery_seconds
        ):
            self._probe_successes = 0
            self._transition(STATE_HALF_OPEN)

    # -- the caller-facing protocol --------------------------------------

    def allow(self) -> bool:
        """May the next backend call proceed?

        Closed: always.  Open: only once the recovery window has passed
        (which moves the breaker to half-open).  Half-open: yes — the
        call is a probe whose outcome decides the next transition.
        """
        self._maybe_enter_half_open()
        if self._state == STATE_OPEN:
            self.metrics.counter(
                "serve.breaker.rejections", breaker=self.name
            ).inc()
            return False
        return True

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            remaining = (
                self._opened_at + self.policy.recovery_seconds - self.clock()
            )
            raise CircuitOpenError(self.name, max(remaining, 0.0))

    def record_success(self) -> None:
        """Report a successful backend call."""
        self._consecutive_failures = 0
        if self._state == STATE_HALF_OPEN:
            self._probe_successes += 1
            self.metrics.counter(
                "serve.breaker.probe_successes", breaker=self.name
            ).inc()
            if self._probe_successes >= self.policy.half_open_probes:
                self._transition(STATE_CLOSED)

    def record_failure(self) -> None:
        """Report a failed backend call (stall, fault, timeout)."""
        self.metrics.counter("serve.breaker.failures", breaker=self.name).inc()
        if self._state == STATE_HALF_OPEN:
            # One failed probe re-trips immediately.
            self._probe_successes = 0
            self._transition(STATE_OPEN)
            return
        self._consecutive_failures += 1
        if (
            self._state == STATE_CLOSED
            and self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._consecutive_failures = 0
            self._transition(STATE_OPEN)
