"""The embedding backend behind the resilient server.

One :class:`EmbeddingBackend` fronts one graph.  ``warm_up()`` runs the
full ProNE pipeline once (through the stage-checkpointing layer, so the
checkpoint store holds a durable copy — the *stale* tier) and a
spectral-propagation-only pass (the mid-fidelity tier), then calibrates
per-node serving costs from the measured stage times:

- ``full`` — per-request recompute at full-pipeline cost per node
  (tSVD bootstrap + propagation), the freshest answer;
- ``propagation_only`` — per-request recompute at propagation-stage
  cost per node, skipping the factorization;
- ``stale`` — a random read of the requested rows from the PM-resident
  checkpoint, costed by the device model; never touches the backend
  compute path, so it stays available when the circuit breaker is open.

Injected ``backend_stall`` faults hang a compute-tier call; the caller's
stall budget converts long stalls into
:class:`~repro.faults.BackendStallError` (a breaker-visible failure).
``pm_degrade`` faults derate the serving costs like they derate the
pipeline's streaming bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.core.embedding import OMeGaEmbedder
from repro.faults import BackendStallError, FaultInjector
from repro.formats.convert import edges_to_csdb
from repro.memsim.devices import (
    AccessPattern,
    Locality,
    MemoryKind,
    Operation,
)
from repro.memsim.persistence import CheckpointedEmbedder
from repro.obs.forensics.records import (
    BLAME_BREAKER,
    BLAME_KERNEL,
    BLAME_STALE_FALLBACK,
)
from repro.obs.metrics import MetricsRegistry

#: Fidelity levels, best first (the degradation ladder's rungs).
FIDELITY_FULL = "full"
FIDELITY_PROPAGATION = "propagation_only"
FIDELITY_STALE = "stale"
FIDELITY_LEVELS = (FIDELITY_FULL, FIDELITY_PROPAGATION, FIDELITY_STALE)


class BackendResponse:
    """Rows served at one fidelity, with the simulated cost paid.

    ``stale_rows`` / ``stale_ranges`` carry per-shard staleness when the
    rows came from a sharded store that hedged part of the gather to its
    checkpoint tier (zero/empty for the monolithic backend).

    ``breakdown`` itemizes ``sim_seconds`` by blame category (see
    :mod:`repro.obs.forensics`); its values sum exactly to
    ``sim_seconds`` because the dominant (kernel) share is built as the
    residual.  ``shard_details`` / ``lookup_seq`` /
    ``refresh_overlap_s`` pass the sharded store's per-gather
    itemization through to the server's forensics collector.
    """

    __slots__ = (
        "rows",
        "fidelity",
        "sim_seconds",
        "stale_rows",
        "stale_ranges",
        "breakdown",
        "shard_details",
        "lookup_seq",
        "refresh_overlap_s",
    )

    def __init__(
        self,
        rows: np.ndarray,
        fidelity: str,
        sim_seconds: float,
        stale_rows: int = 0,
        stale_ranges: tuple[tuple[int, int, int], ...] = (),
        breakdown: dict[str, float] | None = None,
        shard_details: tuple[dict, ...] = (),
        lookup_seq: int | None = None,
        refresh_overlap_s: float = 0.0,
    ) -> None:
        self.rows = rows
        self.fidelity = fidelity
        self.sim_seconds = sim_seconds
        self.stale_rows = stale_rows
        self.stale_ranges = stale_ranges
        self.breakdown = breakdown
        self.shard_details = shard_details
        self.lookup_seq = lookup_seq
        self.refresh_overlap_s = refresh_overlap_s


class EmbeddingBackend:
    """Warmed embedding tiers plus per-request cost simulation."""

    def __init__(
        self,
        embedder: OMeGaEmbedder,
        edges: np.ndarray,
        n_nodes: int,
        faults: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.embedder = embedder
        self.edges = np.asarray(edges)
        self.n_nodes = n_nodes
        self.faults = faults
        self.metrics = (
            metrics if metrics is not None else embedder.metrics
        )
        self._full: np.ndarray | None = None
        self._propagation: np.ndarray | None = None
        self._checkpointed: CheckpointedEmbedder | None = None
        self._full_cost_per_node = 0.0
        self._propagation_cost_per_node = 0.0
        self.warmup_sim_seconds = 0.0

    # -- warmup ----------------------------------------------------------

    @property
    def warm(self) -> bool:
        """True once the embedding tiers are materialized."""
        return self._full is not None

    def warm_up(self) -> float:
        """Build every serving tier; returns the simulated warmup cost.

        Idempotent: a second call is free.
        """
        if self.warm:
            return self.warmup_sim_seconds
        self._checkpointed = CheckpointedEmbedder(self.embedder)
        result = self._checkpointed.embed_with_checkpoints(
            self.edges, self.n_nodes
        )
        self._full = result.embedding
        generation = result.factorization_seconds + result.propagation_seconds
        self._full_cost_per_node = generation / max(self.n_nodes, 1)
        adjacency = edges_to_csdb(self.edges, self.n_nodes)
        self._propagation, propagation_seconds = (
            self.embedder.propagate_only(adjacency)
        )
        self._propagation_cost_per_node = propagation_seconds / max(
            self.n_nodes, 1
        )
        self.warmup_sim_seconds = (
            result.sim_seconds
            + propagation_seconds
            + self._checkpointed.checkpoint_sim_seconds
        )
        self.metrics.counter("serve.backend.warmups").inc()
        return self.warmup_sim_seconds

    def _require_warm(self) -> None:
        if not self.warm:
            raise RuntimeError("backend is cold; call warm_up() first")

    # -- calibration hooks (trace synthesis, policy defaults) ------------

    def compute_cost(self, n_nodes: int, fidelity: str = FIDELITY_FULL) -> float:
        """Healthy simulated cost of one compute-tier request."""
        self._require_warm()
        per_node = (
            self._full_cost_per_node
            if fidelity == FIDELITY_FULL
            else self._propagation_cost_per_node
        )
        return per_node * n_nodes

    def cached_cost(self, n_nodes: int) -> float:
        """Simulated cost of reading ``n_nodes`` rows from the PM tier."""
        pm = self.embedder.config.topology.device(MemoryKind.PM)
        nbytes = float(n_nodes * self.embedder.params.dim * 8)
        return self.embedder.engine.cost_model.access_time(
            pm, Operation.READ, AccessPattern.RANDOM, Locality.LOCAL, nbytes
        )

    # -- serving ---------------------------------------------------------

    def _rows(self, source: np.ndarray, n_nodes: int) -> np.ndarray:
        ids = np.arange(n_nodes) % len(source)
        return source[ids]

    def serve(
        self,
        n_nodes: int,
        fidelity: str,
        stall_budget_s: float,
        sim_now: float | None = None,
    ) -> BackendResponse:
        """One compute-tier call (``full`` or ``propagation_only``).

        ``sim_now`` is the caller's simulated clock position — unused
        by the monolithic backend, consumed by the sharded one to stamp
        supervisor incidents for forensic joining.

        Raises:
            BackendStallError: an injected stall outlived
                ``stall_budget_s`` — the caller paid the budget and
                abandoned the call (a circuit-breaker failure).
        """
        del sim_now
        self._require_warm()
        if fidelity not in (FIDELITY_FULL, FIDELITY_PROPAGATION):
            raise ValueError(
                f"compute tier serves {FIDELITY_FULL!r} or"
                f" {FIDELITY_PROPAGATION!r}, got {fidelity!r}"
            )
        seconds = self.compute_cost(n_nodes, fidelity)
        absorbed_stall = 0.0
        if self.faults is not None:
            seconds /= self.faults.pm_derate()
            stall = self.faults.take_backend_stall()
            if stall is not None:
                self.metrics.counter("serve.backend.stalls").inc()
                if stall.seconds > stall_budget_s:
                    raise BackendStallError(stall.site, stall_budget_s)
                absorbed_stall = stall.seconds
                seconds += absorbed_stall
        source = (
            self._full if fidelity == FIDELITY_FULL else self._propagation
        )
        self.metrics.counter("serve.backend.calls", fidelity=fidelity).inc()
        self.metrics.counter(
            "serve.backend.sim_seconds", fidelity=fidelity
        ).inc(seconds)
        breakdown = {BLAME_KERNEL: seconds - absorbed_stall}
        if absorbed_stall > 0.0:
            # A stall that fit inside the budget still cost real time:
            # charged to the breaker bucket (the budget it burned).
            breakdown[BLAME_BREAKER] = absorbed_stall
        return BackendResponse(
            self._rows(source, n_nodes),
            fidelity,
            seconds,
            breakdown=breakdown,
        )

    def serve_cached(self, n_nodes: int) -> BackendResponse:
        """The stale tier: checkpointed rows at PM read cost, fault-free."""
        self._require_warm()
        cached = self._checkpointed.recover_embedding()
        if cached is None:  # pragma: no cover - warm_up always commits
            raise RuntimeError("no durable embedding in the checkpoint store")
        self.metrics.counter(
            "serve.backend.calls", fidelity=FIDELITY_STALE
        ).inc()
        seconds = self.cached_cost(n_nodes)
        self.metrics.counter(
            "serve.backend.sim_seconds", fidelity=FIDELITY_STALE
        ).inc(seconds)
        return BackendResponse(
            self._rows(cached, n_nodes),
            FIDELITY_STALE,
            seconds,
            breakdown={BLAME_STALE_FALLBACK: seconds},
        )
