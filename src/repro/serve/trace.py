"""Synthetic embedding-request traces.

A serving experiment replays a :class:`RequestTrace` — a deterministic,
JSON-serializable list of :class:`ServeRequest` — against the
:class:`~repro.serve.server.EmbeddingServer`.  Traces are generated from
a seed (:meth:`RequestTrace.synthesize`), so any chaos run can be
replayed exactly, and saved/loaded in the CLI's ``--trace`` format.

Request classes model the serving mix of low-latency GNN systems:
``interactive`` requests are small lookups with tight deadlines that may
degrade all the way to the cached tier; ``batch`` requests are large
scoring jobs with loose deadlines whose ladder skips the mid rung (full
fidelity or the cache — a half-fresh batch job helps nobody).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Recognised request classes.
REQUEST_CLASSES = ("interactive", "batch")


@dataclass(frozen=True)
class ServeRequest:
    """One embedding request.

    Attributes:
        request_id: unique identifier within the trace.
        arrival_s: arrival time on the serving clock, seconds.
        klass: one of :data:`REQUEST_CLASSES`.
        n_nodes: how many node embeddings the request asks for.
        deadline_s: latency budget relative to arrival, seconds.
    """

    request_id: str
    arrival_s: float
    klass: str
    n_nodes: int
    deadline_s: float

    def __post_init__(self) -> None:
        if self.klass not in REQUEST_CLASSES:
            raise ValueError(
                f"klass must be one of {REQUEST_CLASSES}, got {self.klass!r}"
            )
        if self.arrival_s < 0:
            raise ValueError(f"arrival_s must be >= 0, got {self.arrival_s}")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "klass": self.klass,
            "n_nodes": self.n_nodes,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ServeRequest":
        """Rebuild a request from :meth:`to_dict` output."""
        return cls(
            request_id=str(payload["request_id"]),
            arrival_s=float(payload["arrival_s"]),
            klass=payload["klass"],
            n_nodes=int(payload["n_nodes"]),
            deadline_s=float(payload["deadline_s"]),
        )


@dataclass(frozen=True)
class RequestTrace:
    """An immutable, replayable request sequence (sorted by arrival)."""

    requests: tuple[ServeRequest, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.requests, key=lambda r: (r.arrival_s, r.request_id))
        )
        object.__setattr__(self, "requests", ordered)

    def __len__(self) -> int:
        return len(self.requests)

    @classmethod
    def synthesize(
        cls,
        seed: int,
        n_requests: int = 500,
        per_node_cost_s: float = 1e-5,
        load: float = 0.8,
        interactive_fraction: float = 0.8,
        deadline_slack: float = 20.0,
        max_batch_nodes: int = 256,
    ) -> "RequestTrace":
        """Seeded open-loop trace generator.

        ``per_node_cost_s`` is the backend's full-fidelity cost per
        requested node (e.g. ``backend.compute_cost(1)``).  The expected
        per-request service time follows from the class mix — batch
        requests ask for far more nodes than interactive ones — and
        arrivals are Poisson at rate ``load / expected_service``, so
        ``load`` really is the offered utilization of a single healthy
        full-fidelity worker.  Each request's deadline is
        ``deadline_slack`` times its *own class's* expected service time
        (10x looser for batch), jittered +/-50%.
        """
        import numpy as np

        if not 0.0 < load:
            raise ValueError(f"load must be > 0, got {load}")
        if per_node_cost_s <= 0:
            raise ValueError(
                f"per_node_cost_s must be > 0, got {per_node_cost_s}"
            )
        if not 0.0 <= interactive_fraction <= 1.0:
            raise ValueError(
                "interactive_fraction must be in [0, 1],"
                f" got {interactive_fraction}"
            )
        if max_batch_nodes < 16:
            raise ValueError(
                f"max_batch_nodes must be >= 16, got {max_batch_nodes}"
            )
        rng = np.random.default_rng(seed)
        # Expected node counts of each class (uniform integer draws).
        mean_interactive_nodes = (1 + 16) / 2.0
        mean_batch_nodes = (16 + max_batch_nodes) / 2.0
        interactive_service = per_node_cost_s * mean_interactive_nodes
        batch_service = per_node_cost_s * mean_batch_nodes
        expected_service = (
            interactive_fraction * interactive_service
            + (1.0 - interactive_fraction) * batch_service
        )
        interarrival = expected_service / load
        arrivals = np.cumsum(rng.exponential(interarrival, size=n_requests))
        requests = []
        for i in range(n_requests):
            interactive = rng.random() < interactive_fraction
            if interactive:
                klass = "interactive"
                n_nodes = int(rng.integers(1, 17))
                deadline = deadline_slack * interactive_service * float(
                    rng.uniform(0.5, 1.5)
                )
            else:
                klass = "batch"
                n_nodes = int(rng.integers(16, max_batch_nodes + 1))
                deadline = 10.0 * deadline_slack * batch_service * float(
                    rng.uniform(0.5, 1.5)
                )
            requests.append(
                ServeRequest(
                    request_id=f"r{i:05d}",
                    arrival_s=float(arrivals[i]),
                    klass=klass,
                    n_nodes=n_nodes,
                    deadline_s=deadline,
                )
            )
        return cls(requests=tuple(requests), seed=seed)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "seed": self.seed,
            "requests": [request.to_dict() for request in self.requests],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RequestTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        return cls(
            requests=tuple(
                ServeRequest.from_dict(r) for r in payload.get("requests", [])
            ),
            seed=payload.get("seed"),
        )

    def save(self, path: str | Path) -> Path:
        """Write the trace as JSON (the CLI's ``--trace`` format)."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RequestTrace":
        """Read a trace written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
