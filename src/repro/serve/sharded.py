"""Sharded serving backend: the store's scatter-gather behind the ladder.

:class:`ShardedEmbeddingBackend` keeps the monolithic backend's warmup,
cost model, stall faults, and global stale tier, but sources
full-fidelity rows from an :class:`~repro.shard.EmbeddingShardManager`
— so shard crashes, hangs, and heartbeat losses injected by a fault
plan flow through real processes into the serving ladder:

- a hedged gather (replica or checkpoint tier) serves on the same rung
  with ``stale_rows`` marked, degrading *within* the rung;
- a :class:`~repro.shard.PartialResultError` falls one rung without a
  breaker failure (per-shard loss is not backend-wide loss);
- with hedging disabled (the unsupervised arm) the raw
  :class:`~repro.shard.ShardCrashError` escapes and the server fails
  the request — the availability gap the recovery benchmark measures.

A :class:`~repro.shard.ShardSupervisor` (optional) is consulted once
per serve call, so crashed shards restart from their WAL checkpoints
between requests, exactly like a health-check loop would.
"""

from __future__ import annotations

import numpy as np

from repro.core.embedding import OMeGaEmbedder
from repro.faults import BackendStallError, FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.serve.backend import (
    FIDELITY_FULL,
    BackendResponse,
    EmbeddingBackend,
)
from repro.shard.store import EmbeddingShardManager, ShardPolicy
from repro.shard.supervisor import ShardSupervisor, SupervisorPolicy


class ShardedEmbeddingBackend(EmbeddingBackend):
    """An :class:`EmbeddingBackend` whose full tier is a sharded store.

    Args:
        embedder: pipeline used to materialize the tiers.
        edges: the graph's edge list.
        n_nodes: node count.
        shard_policy: sharded-store configuration.
        supervisor_policy: supervision thresholds; ``None`` disables
            supervision entirely (the unsupervised benchmark arm).
        faults: one injector shared by serve-level and shard-level
            fault plans.
        stream: live telemetry stream for ``shard_event`` records.
    """

    def __init__(
        self,
        embedder: OMeGaEmbedder,
        edges: np.ndarray,
        n_nodes: int,
        shard_policy: ShardPolicy = ShardPolicy(),
        supervisor_policy: SupervisorPolicy | None = SupervisorPolicy(),
        faults: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        stream=None,
    ) -> None:
        super().__init__(embedder, edges, n_nodes, faults=faults, metrics=metrics)
        self.shard_policy = shard_policy
        self.supervisor_policy = supervisor_policy
        self.stream = stream
        self.shards: EmbeddingShardManager | None = None
        self.supervisor: ShardSupervisor | None = None
        self._serve_seq = 0

    # -- warmup ----------------------------------------------------------

    def warm_up(self) -> float:
        """Build the tiers, then shard the full table into processes.

        The shard genesis checkpoints' persistence cost joins the
        warmup bill.
        """
        if self.warm:
            return self.warmup_sim_seconds
        super().warm_up()
        degrees = np.bincount(
            np.asarray(self.edges, dtype=np.int64).ravel(),
            minlength=self.n_nodes,
        )[: self.n_nodes]
        self.shards = EmbeddingShardManager(
            self._full,
            degrees=degrees,
            policy=self.shard_policy,
            faults=self.faults,
            metrics=self.metrics,
            stream=self.stream,
            cost_model=self.embedder.engine.cost_model,
        ).start()
        if self.supervisor_policy is not None:
            self.supervisor = ShardSupervisor(
                self.shards, self.supervisor_policy, metrics=self.metrics
            )
            self.supervisor.wait_heartbeats()
        self.warmup_sim_seconds += sum(
            host.domain.sim_seconds for host in self.shards.hosts
        )
        return self.warmup_sim_seconds

    def close(self) -> None:
        """Stop every shard process and unlink their segments."""
        if self.shards is not None:
            self.shards.close()
            self.shards = None
        self.supervisor = None

    def __enter__(self) -> "ShardedEmbeddingBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- serving ---------------------------------------------------------

    def _request_ids(self, n_nodes: int) -> np.ndarray:
        """Deterministic node ids of one request, spread across shards.

        A strided walk with a per-request offset, so consecutive
        requests touch every shard rather than camping on shard 0 —
        the access pattern that makes single-shard loss visible.
        """
        total = self.shards.routing.n_nodes
        stride = max(total // max(n_nodes, 1), 1)
        offset = (self._serve_seq * 13) % total
        return (offset + np.arange(n_nodes, dtype=np.int64) * stride) % total

    def serve(
        self, n_nodes: int, fidelity: str, stall_budget_s: float
    ) -> BackendResponse:
        """One compute-tier call; the full tier gathers from the shards.

        Raises:
            BackendStallError: injected stall outlived the budget.
            PartialResultError: a shard range had no rung left to serve.
            ShardError: hedging disabled and a shard failed.
        """
        self._require_warm()
        if fidelity != FIDELITY_FULL:
            return super().serve(n_nodes, fidelity, stall_budget_s)
        if self.supervisor is not None:
            # The health-check loop runs between requests: crashed or
            # hung shards restart from checkpoints before this gather.
            self.supervisor.check()
        seconds = self.compute_cost(n_nodes, fidelity)
        if self.faults is not None:
            seconds /= self.faults.pm_derate()
            stall = self.faults.take_backend_stall()
            if stall is not None:
                self.metrics.counter("serve.backend.stalls").inc()
                if stall.seconds > stall_budget_s:
                    raise BackendStallError(stall.site, stall_budget_s)
                seconds += stall.seconds
        self._serve_seq += 1
        result = self.shards.lookup(self._request_ids(n_nodes))
        self.metrics.counter("serve.backend.calls", fidelity=fidelity).inc()
        self.metrics.counter(
            "serve.backend.sim_seconds", fidelity=fidelity
        ).inc(seconds + result.sim_seconds)
        return BackendResponse(
            result.rows,
            fidelity,
            seconds + result.sim_seconds,
            stale_rows=result.stale_rows,
            stale_ranges=result.stale_ranges,
        )

    # -- introspection ---------------------------------------------------

    def shard_summary(self) -> dict:
        """Headline shard-fleet numbers for reports and the CLI."""
        if self.shards is None:
            return {"n_shards": 0}
        restarts = sum(host.restarts for host in self.shards.hosts)
        return {
            "n_shards": self.shards.routing.n_shards,
            "ranges": [list(r) for r in self.shards.routing.ranges],
            "lookups": self.shards.lookup_seq,
            "restarts": restarts,
            "abandoned": sum(
                1 for host in self.shards.hosts if host.abandoned
            ),
            "stale_rows": int(self.metrics.value("shard.stale_rows")),
            "hedged_checkpoint": int(
                self.metrics.value("shard.hedged", target="checkpoint")
            ),
            "hedged_replica": int(
                self.metrics.value("shard.hedged", target="replica")
            ),
            "incidents": (
                [
                    {
                        "shard": i.shard_id,
                        "reason": i.reason,
                        "action": i.action,
                        "lost_versions": i.lost_versions,
                    }
                    for i in self.supervisor.incidents
                ]
                if self.supervisor is not None
                else []
            ),
        }
