"""Sharded serving backend: the store's scatter-gather behind the ladder.

:class:`ShardedEmbeddingBackend` keeps the monolithic backend's warmup,
cost model, stall faults, and global stale tier, but sources
full-fidelity rows from an :class:`~repro.shard.EmbeddingShardManager`
— so shard crashes, hangs, and heartbeat losses injected by a fault
plan flow through real processes into the serving ladder:

- a hedged gather (replica or checkpoint tier) serves on the same rung
  with ``stale_rows`` marked, degrading *within* the rung;
- a :class:`~repro.shard.PartialResultError` falls one rung without a
  breaker failure (per-shard loss is not backend-wide loss);
- with hedging disabled (the unsupervised arm) the raw
  :class:`~repro.shard.ShardCrashError` escapes and the server fails
  the request — the availability gap the recovery benchmark measures.

A :class:`~repro.shard.ShardSupervisor` (optional) is consulted once
per serve call, so crashed shards restart from their WAL checkpoints
between requests, exactly like a health-check loop would.
"""

from __future__ import annotations

import numpy as np

from repro.core.embedding import OMeGaEmbedder
from repro.faults import BackendStallError, FaultInjector
from repro.graphs.partition import (
    balanced_edge_partition,
    edge_cut_fraction,
    hash_partition,
    partition_load_balance,
)
from repro.obs.forensics.records import (
    BLAME_BREAKER,
    BLAME_KERNEL,
    BLAME_SHARD_HEDGE,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.backend import (
    FIDELITY_FULL,
    BackendResponse,
    EmbeddingBackend,
)
from repro.shard.store import EmbeddingShardManager, ShardPolicy
from repro.shard.supervisor import ShardSupervisor, SupervisorPolicy


class ShardedEmbeddingBackend(EmbeddingBackend):
    """An :class:`EmbeddingBackend` whose full tier is a sharded store.

    Args:
        embedder: pipeline used to materialize the tiers.
        edges: the graph's edge list.
        n_nodes: node count.
        shard_policy: sharded-store configuration.
        supervisor_policy: supervision thresholds; ``None`` disables
            supervision entirely (the unsupervised benchmark arm).
        faults: one injector shared by serve-level and shard-level
            fault plans.
        stream: live telemetry stream for ``shard_event`` records.
    """

    def __init__(
        self,
        embedder: OMeGaEmbedder,
        edges: np.ndarray,
        n_nodes: int,
        shard_policy: ShardPolicy = ShardPolicy(),
        supervisor_policy: SupervisorPolicy | None = SupervisorPolicy(),
        faults: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        stream=None,
    ) -> None:
        super().__init__(embedder, edges, n_nodes, faults=faults, metrics=metrics)
        self.shard_policy = shard_policy
        self.supervisor_policy = supervisor_policy
        self.stream = stream
        self.shards: EmbeddingShardManager | None = None
        self.supervisor: ShardSupervisor | None = None
        self.placement: dict | None = None
        self._serve_seq = 0

    # -- warmup ----------------------------------------------------------

    def warm_up(self) -> float:
        """Build the tiers, then shard the full table into processes.

        The shard genesis checkpoints' persistence cost joins the
        warmup bill.
        """
        if self.warm:
            return self.warmup_sim_seconds
        super().warm_up()
        degrees = np.bincount(
            np.asarray(self.edges, dtype=np.int64).ravel(),
            minlength=self.n_nodes,
        )[: self.n_nodes]
        self.shards = EmbeddingShardManager(
            self._full,
            degrees=degrees,
            policy=self.shard_policy,
            faults=self.faults,
            metrics=self.metrics,
            stream=self.stream,
            cost_model=self.embedder.engine.cost_model,
        ).start()
        if self.supervisor_policy is not None:
            self.supervisor = ShardSupervisor(
                self.shards, self.supervisor_policy, metrics=self.metrics
            )
            self.supervisor.wait_heartbeats()
        self.warmup_sim_seconds += sum(
            host.domain.sim_seconds for host in self.shards.hosts
        )
        self.placement = self._measure_placement(degrees)
        return self.warmup_sim_seconds

    def _measure_placement(self, degrees: np.ndarray) -> dict:
        """Real shard placement vs the DistDGL / DistGER cost models.

        The store's actual node->shard assignment (entropy-aware ranges
        or the consistent-hash ring) is scored with the same balance and
        edge-cut measures as two simulated baselines: DistDGL-style
        random hashing (``hash_partition``) and DistGER-style
        workload-balanced chunking (``balanced_edge_partition``).
        Published as ``shard.placement.*`` gauges so ``repro diff
        --shard-placement`` can compare runs.
        """
        n_shards = self.shards.routing.n_shards
        all_ids = np.arange(self.n_nodes, dtype=np.int64)
        real = self.shards.routing.shard_of(all_ids)
        weights = degrees.astype(np.float64)
        edges = np.asarray(self.edges, dtype=np.int64)
        models = {
            "real": real,
            "distdgl": hash_partition(self.n_nodes, n_shards),
            "distger": balanced_edge_partition(weights, n_shards),
        }
        placement: dict = {
            "n_shards": n_shards,
            "rows": [int((real == s).sum()) for s in range(n_shards)],
            "nnz": [
                float(weights[real == s].sum()) for s in range(n_shards)
            ],
            "models": {},
        }
        for model, assignment in models.items():
            balance = partition_load_balance(assignment, weights=weights)
            cut = edge_cut_fraction(edges, assignment)
            placement["models"][model] = {
                "balance": balance, "edge_cut": cut
            }
            self.metrics.gauge(
                "shard.placement.balance", model=model
            ).set(balance)
            self.metrics.gauge(
                "shard.placement.edge_cut", model=model
            ).set(cut)
        for shard, (rows, nnz) in enumerate(
            zip(placement["rows"], placement["nnz"])
        ):
            self.metrics.gauge(
                "shard.placement.rows", shard=str(shard)
            ).set(float(rows))
            self.metrics.gauge(
                "shard.placement.nnz", shard=str(shard)
            ).set(nnz)
        return placement

    def close(self) -> None:
        """Stop every shard process and unlink their segments."""
        if self.shards is not None:
            self.shards.close()
            self.shards = None
        self.supervisor = None

    def __enter__(self) -> "ShardedEmbeddingBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- serving ---------------------------------------------------------

    def _request_ids(self, n_nodes: int) -> np.ndarray:
        """Deterministic node ids of one request, spread across shards.

        A strided walk with a per-request offset, so consecutive
        requests touch every shard rather than camping on shard 0 —
        the access pattern that makes single-shard loss visible.
        """
        total = self.shards.routing.n_nodes
        stride = max(total // max(n_nodes, 1), 1)
        offset = (self._serve_seq * 13) % total
        return (offset + np.arange(n_nodes, dtype=np.int64) * stride) % total

    def serve(
        self,
        n_nodes: int,
        fidelity: str,
        stall_budget_s: float,
        sim_now: float | None = None,
    ) -> BackendResponse:
        """One compute-tier call; the full tier gathers from the shards.

        Raises:
            BackendStallError: injected stall outlived the budget.
            PartialResultError: a shard range had no rung left to serve.
            ShardError: hedging disabled and a shard failed.
        """
        self._require_warm()
        if fidelity != FIDELITY_FULL:
            return super().serve(n_nodes, fidelity, stall_budget_s, sim_now)
        if self.supervisor is not None:
            # The health-check loop runs between requests: crashed or
            # hung shards restart from checkpoints before this gather.
            # The caller's clock position stamps any incident raised
            # here (or reactively during the gather below), so `repro
            # why` can join it onto overlapping request deadlines.
            self.supervisor.check(sim_now=sim_now)
        seconds = self.compute_cost(n_nodes, fidelity)
        absorbed_stall = 0.0
        if self.faults is not None:
            seconds /= self.faults.pm_derate()
            stall = self.faults.take_backend_stall()
            if stall is not None:
                self.metrics.counter("serve.backend.stalls").inc()
                if stall.seconds > stall_budget_s:
                    raise BackendStallError(stall.site, stall_budget_s)
                absorbed_stall = stall.seconds
                seconds += absorbed_stall
        self._serve_seq += 1
        result = self.shards.lookup(self._request_ids(n_nodes))
        self.metrics.counter("serve.backend.calls", fidelity=fidelity).inc()
        self.metrics.counter(
            "serve.backend.sim_seconds", fidelity=fidelity
        ).inc(seconds + result.sim_seconds)
        total = seconds + result.sim_seconds
        hedge_s = sum(
            d["sim_seconds"] for d in result.shard_details if d["stale"]
        )
        # Kernel is the residual, so the breakdown sums to the total
        # exactly: compute + fresh DRAM gathers vs the hedged PM reads
        # (+ penalties) vs the absorbed stall.
        breakdown = {BLAME_KERNEL: total - absorbed_stall - hedge_s}
        if absorbed_stall > 0.0:
            breakdown[BLAME_BREAKER] = absorbed_stall
        if hedge_s > 0.0:
            breakdown[BLAME_SHARD_HEDGE] = hedge_s
        return BackendResponse(
            result.rows,
            fidelity,
            total,
            stale_rows=result.stale_rows,
            stale_ranges=result.stale_ranges,
            breakdown=breakdown,
            shard_details=result.shard_details,
            lookup_seq=result.seq,
            refresh_overlap_s=result.refresh_sim_seconds,
        )

    # -- introspection ---------------------------------------------------

    def shard_summary(self) -> dict:
        """Headline shard-fleet numbers for reports and the CLI."""
        if self.shards is None:
            return {"n_shards": 0}
        shards = self.shards
        restarts = sum(host.restarts for host in shards.hosts)
        refresher = shards.refresher
        return {
            "n_shards": shards.routing.n_shards,
            "ranges": shards.routing.range_summaries(),
            "lookups": shards.lookup_seq,
            "rows_served": list(shards.rows_served),
            "load_imbalance": shards.load_imbalance(),
            "restarts": restarts,
            "promotions": sum(host.promotions for host in shards.hosts),
            "abandoned": sum(
                1 for host in shards.hosts if host.abandoned
            ),
            "reshard_epoch": shards.reshard_epoch,
            "resharded_ranges": int(
                self.metrics.value("shard.resharded_ranges")
            ),
            "corrupt_checkpoints": sum(
                host.quarantined for host in shards.hosts
            ),
            "bg_checkpoints": (
                refresher.bg_checkpoints if refresher is not None else 0
            ),
            "staleness_max": (
                refresher.max_observed_staleness
                if refresher is not None
                else 0
            ),
            "refresh_sim_seconds": (
                refresher.sim_refresh_seconds
                if refresher is not None
                else 0.0
            ),
            "stale_rows": int(self.metrics.value("shard.stale_rows")),
            "hedged_checkpoint": int(
                self.metrics.value("shard.hedged", target="checkpoint")
            ),
            "hedged_replica": int(
                self.metrics.value("shard.hedged", target="replica")
            ),
            "placement": self.placement,
            "incidents": (
                [
                    {
                        "shard": i.shard_id,
                        "reason": i.reason,
                        "action": i.action,
                        "lost_versions": i.lost_versions,
                        "recovery_s": i.recovery_s,
                    }
                    for i in self.supervisor.incidents
                ]
                if self.supervisor is not None
                else []
            ),
        }
