"""Resilient embedding serving on the simulated clock.

``repro.serve`` turns the batch embedding pipeline into a serving
system and studies its behaviour under chaos: a bounded admission queue
with load shedding, per-request deadlines, a circuit breaker around the
compute backend, and a per-class graceful-degradation ladder (full ProNE
→ propagation-only → stale checkpoint rows).  Everything runs on one
:class:`~repro.memsim.clock.VirtualClock`, so a chaos run is exactly
replayable from a trace seed and a fault plan.
"""

from repro.serve.backend import (
    FIDELITY_FULL,
    FIDELITY_LEVELS,
    FIDELITY_PROPAGATION,
    FIDELITY_STALE,
    BackendResponse,
    EmbeddingBackend,
)
from repro.serve.breaker import (
    BREAKER_STATES,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.serve.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServeError,
)
from repro.serve.server import (
    DEFAULT_LADDERS,
    RESPONSE_STATUSES,
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_SERVED,
    STATUS_SHED,
    EmbeddingServer,
    ServePolicy,
    ServeReport,
    ServeResponse,
)
from repro.serve.trace import REQUEST_CLASSES, RequestTrace, ServeRequest

__all__ = [
    "BREAKER_STATES",
    "BackendResponse",
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_LADDERS",
    "DeadlineExceededError",
    "EmbeddingBackend",
    "EmbeddingServer",
    "FIDELITY_FULL",
    "FIDELITY_LEVELS",
    "FIDELITY_PROPAGATION",
    "FIDELITY_STALE",
    "QueueFullError",
    "REQUEST_CLASSES",
    "RESPONSE_STATUSES",
    "RequestTrace",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "STATUS_DEADLINE",
    "STATUS_FAILED",
    "STATUS_SERVED",
    "STATUS_SHED",
    "ServeError",
    "ServePolicy",
    "ServeReport",
    "ServeRequest",
    "ServeResponse",
]
