"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``datasets``          — print the Table I analogues;
- ``probe``             — print the Fig. 9 PM characterization;
- ``embed``             — embed a Table I analogue or an edge-list file;
- ``spmm``              — run one instrumented SpMM and print the cost
  anatomy;
- ``compare``           — run the Fig. 12 system arms on one graph;
- ``report``            — render a ``--telemetry-out`` JSONL file back
  into the Fig. 7(a)-style breakdown tables (plus the hot-span table);
- ``serve-sim``         — replay a request trace against the resilient
  embedding server (:mod:`repro.serve`), optionally under a serve-time
  fault plan (backend stalls, request bursts, PM degradation) and/or a
  declarative SLO spec (``--slo``, with error-budget burn rates);
- ``diff``              — per-stage / per-metric deltas between two
  telemetry exports, nonzero exit when a time-like series regresses
  past ``--threshold``;
- ``profile``           — fold a telemetry export's spans into a
  flamegraph-style profile; ``--out`` writes the collapsed-stack text
  form standard flamegraph tooling consumes;
- ``perf-gate``         — run the pinned micro-bench suite, compare
  against the stored baseline (``benchmarks/baselines/``) and append a
  ``BENCH_omega.json`` trajectory point (the CI perf-regression gate);
- ``top``               — the real-time ops view: tail a ``--live``
  stream file and render req/s, shed/deadline rates, breaker state,
  rung occupancy, SpMM throughput and SLO burn (``--once`` renders a
  single frame; ``--format prom`` emits Prometheus exposition text);
- ``why``               — per-request tail-latency forensics: rebuild a
  request's causal tree from a ``--live`` stream and render it as a
  waterfall with per-category blame fractions (queue / breaker /
  shard-hedge / stale-fallback / kernel), incident-linked; without a
  trace id, renders the slowest ``--worst N`` retained exemplars;
- ``attribute``         — fold a ``--live`` stream into the aggregate
  per-class blame table (``--check`` exits nonzero when any request's
  blame fails to sum to its simulated latency);
- ``trend``             — per-series trajectories over the
  ``BENCH_omega.json`` perf history, with sparklines (perf-gate points
  contribute ``attribution.*`` blame-fraction series);
- ``baselines``         — inspect the baseline store: ``list`` refs,
  ``show`` a payload, ``gc`` unreferenced objects (dry-run default).

``embed``, ``spmm``, ``compare`` and ``calibrate`` accept
``--telemetry-out PATH`` to export spans, metrics and cost ledgers as
structured JSONL (see :mod:`repro.obs`).  ``embed``, ``spmm``,
``serve-sim`` and ``perf-gate`` also accept ``--live PATH`` to stream
the telemetry incrementally to a crash-tolerant JSONL file while the
run is in flight — the file ``repro top`` tails.  ``embed``
additionally takes ``--faults PLAN.json`` (a
:class:`repro.faults.FaultPlan`) to run under injected faults with
stage-granular checkpoints, ``--resume`` to recover from injected
crashes and finish the run, and ``--slo SPEC.json`` to gate the
pipeline's stage budgets and checkpoint overhead.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.baselines.systems import run_arm, standard_arms
from repro.bench.harness import format_seconds, format_table, project_full_scale
from repro.core.config import (
    AllocationScheme,
    ExecBackend,
    MemoryMode,
    OMeGaConfig,
    ParallelConfig,
    PlacementScheme,
)
from repro.core.embedding import OMeGaEmbedder
from repro.core.spmm import SpMMEngine
from repro.faults import FaultInjector, FaultPlan, InjectedCrash
from repro.formats.convert import edges_to_csdb
from repro.graphs.datasets import DATASET_NAMES, dataset_table, load_dataset
from repro.graphs.io import load_edge_list
from repro.memsim.devices import pm_spec
from repro.memsim.persistence import CheckpointedEmbedder
from repro.memsim.probe import peak_bandwidth_summary, probe_bandwidth
from repro.obs.export import TelemetrySession
from repro.obs.report import render_report_file


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument(
        "--mode",
        choices=[m.value for m in MemoryMode],
        default=MemoryMode.HETEROGENEOUS.value,
    )
    parser.add_argument(
        "--allocation",
        choices=[a.value for a in AllocationScheme],
        default=AllocationScheme.ENTROPY_AWARE.value,
    )
    parser.add_argument(
        "--placement",
        choices=[p.value for p in PlacementScheme],
        default=PlacementScheme.NADP.value,
    )
    parser.add_argument("--no-prefetch", action="store_true")
    parser.add_argument(
        "--exec-backend",
        choices=[b.value for b in ExecBackend],
        default=None,
        help=(
            "execution backend for the real kernels: 'simulated' (serial,"
            " deterministic default), 'shared_memory' (worker-process"
            " pool over zero-copy CSDB views), or 'threads' (persistent"
            " in-process thread pool, zero segment copies); every"
            " backend produces bit-identical output"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the shared-memory backend (default 2)",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="export spans/metrics/cost ledgers as JSONL (see 'repro report')",
    )
    parser.add_argument(
        "--live",
        metavar="PATH",
        help="stream telemetry incrementally to a JSONL file while the"
        " run is in flight (tail it with 'repro top PATH')",
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="with --live: also tail the stream in this terminal,"
        " printing stages and shard events as they complete",
    )


def _parallel_from_args(args: argparse.Namespace) -> ParallelConfig:
    """Backend selection: explicit flags beat env vars beat defaults."""
    parallel = ParallelConfig.default()
    backend = getattr(args, "exec_backend", None)
    workers = getattr(args, "workers", None)
    if backend is not None:
        parallel = replace(parallel, backend=ExecBackend(backend))
    if workers is not None:
        parallel = replace(parallel, n_workers=workers)
    return parallel


def _config_from_args(args: argparse.Namespace, capacity_scale: int) -> OMeGaConfig:
    mode = MemoryMode(args.mode)
    return OMeGaConfig(
        n_threads=args.threads,
        dim=args.dim,
        memory_mode=mode,
        allocation=AllocationScheme(args.allocation),
        placement=PlacementScheme(args.placement),
        prefetcher_enabled=(
            not args.no_prefetch and mode is MemoryMode.HETEROGENEOUS
        ),
        capacity_scale=capacity_scale,
        parallel=_parallel_from_args(args),
    )


def _load_graph(args: argparse.Namespace):
    if args.graph.upper() in DATASET_NAMES:
        dataset = load_dataset(args.graph)
        return dataset.edges, dataset.n_nodes, dataset.scale, dataset.name
    edges, n_nodes = load_edge_list(args.graph)
    return edges, n_nodes, 1, args.graph


def cmd_datasets(_: argparse.Namespace) -> int:
    rows = dataset_table()
    print(
        format_table(
            ["graph", "paper nodes", "paper edges", "scale", "nodes", "edges"],
            [
                [
                    r["graph"],
                    f"{r['paper_nodes']:,}",
                    f"{r['paper_edges']:,}",
                    r["scale"],
                    f"{r['nodes']:,}",
                    f"{r['edges']:,}",
                ]
                for r in rows
            ],
            title="Table I analogues",
        )
    )
    return 0


def cmd_probe(_: argparse.Namespace) -> int:
    results = probe_bandwidth(pm_spec(), thread_counts=(1, 4, 16, 28))
    rows = [
        [
            f"{r.op.value}-{r.pattern.value}-{r.locality.value}",
            r.threads,
            f"{r.bandwidth_gib_s:.2f}",
        ]
        for r in results
    ]
    print(format_table(["curve", "threads", "GiB/s"], rows, "PM probe (Fig. 9)"))
    for name, value in peak_bandwidth_summary(pm_spec()).items():
        print(f"  {name} = {value:.2f}")
    return 0


def _telemetry_session(
    args: argparse.Namespace, command: str, graph: str, force: bool = False
) -> TelemetrySession | None:
    live = getattr(args, "live", None)
    if not args.telemetry_out and not live and not force:
        return None
    session = TelemetrySession(
        meta={
            "command": command,
            "graph": graph,
            "mode": args.mode,
            "allocation": args.allocation,
            "placement": args.placement,
            "threads": args.threads,
            "dim": args.dim,
        }
    )
    if live:
        session.stream_to(live)
    return session


class _StreamFollowPrinter:
    """Tail this process's own ``--live`` stream and print progress.

    A daemon thread polls the stream file with
    :class:`~repro.obs.live.StreamFollower` and prints one line per
    progress-worthy record (completed stages, shard events), so a long
    embed/compare run shows its pipeline advancing without a second
    terminal running ``repro top``.
    """

    def __init__(self, path: str) -> None:
        import threading

        self.path = path
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_StreamFollowPrinter":
        print(f"following live stream {self.path}")
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        import time

        from repro.obs.live import StreamFollower, progress_line

        follower = StreamFollower(self.path)
        while True:
            for record in follower.poll():
                line = progress_line(record)
                if line is not None:
                    print(line, flush=True)
            if follower.closed or self._stop.is_set():
                return
            time.sleep(0.2)


def _follow_stream(args: argparse.Namespace):
    """The active ``--follow`` printer, or a no-op context manager."""
    import contextlib

    if getattr(args, "follow", False):
        live = getattr(args, "live", None)
        if not live:
            raise SystemExit("--follow requires --live PATH")
        return _StreamFollowPrinter(live)
    return contextlib.nullcontext()


def _save_telemetry(session: TelemetrySession | None, path: str | None) -> None:
    if session is None:
        return
    if session.stream is not None:
        stream_path = session.close_stream()
        print(f"live stream closed at {stream_path}")
    if path:
        session.save(path)
        print(f"telemetry written to {path}")


def _embed_under_faults(
    args: argparse.Namespace,
    embedder: OMeGaEmbedder,
    edges: np.ndarray,
    n_nodes: int,
    session: TelemetrySession | None,
):
    """Run ``embed`` under a fault plan; returns the result or None.

    Crashes propagate as printed diagnostics; with ``--resume`` the run
    recovers from the last durable stage checkpoint (repeatedly, if the
    plan arms several crashes) and still completes.
    """
    plan = FaultPlan.load(args.faults)
    injector = FaultInjector(plan, embedder.metrics)
    checkpointed = CheckpointedEmbedder(embedder)
    if session is not None:
        session.event(
            "fault_plan", path=args.faults, seed=plan.seed,
            events=[event.to_dict() for event in plan.events],
        )
    try:
        return checkpointed.embed_with_checkpoints(
            edges, n_nodes, faults=injector
        )
    except InjectedCrash as crash:
        print(
            f"injected crash at stage {crash.site!r} ({crash.phase});"
            f" durable stages: {checkpointed.wal.stages or 'none'}"
        )
        if session is not None:
            session.event("crash", site=crash.site, phase=crash.phase)
        if not args.resume:
            print("re-run with --resume to recover from the checkpoint log")
            return None
    while True:
        try:
            result = checkpointed.resume(faults=injector)
            break
        except InjectedCrash as crash:
            print(
                f"injected crash at stage {crash.site!r} ({crash.phase});"
                " resuming again"
            )
            if session is not None:
                session.event("crash", site=crash.site, phase=crash.phase)
    recovered = embedder.metrics.counter("checkpoint.recovered_stages").value
    recovered_sim = embedder.metrics.counter(
        "checkpoint.recovered_sim_seconds"
    ).value
    print(
        f"resumed: {recovered:.0f} stage checkpoints recovered,"
        f" {format_seconds(recovered_sim)} of simulated work not redone"
    )
    if session is not None:
        session.event(
            "resumed", recovered_stages=recovered,
            recovered_sim_seconds=recovered_sim,
        )
    return result


def cmd_embed(args: argparse.Namespace) -> int:
    edges, n_nodes, scale, name = _load_graph(args)
    config = _config_from_args(args, scale)
    # An SLO evaluation needs the run's spans and metric records even
    # when no telemetry file was requested, so force a session.
    session = _telemetry_session(args, "embed", name, force=bool(args.slo))
    embedder = OMeGaEmbedder(
        config,
        tracer=session.tracer if session else None,
        metrics=session.metrics if session else None,
    )
    with _follow_stream(args):
        if args.faults:
            result = _embed_under_faults(
                args, embedder, edges, n_nodes, session
            )
            if result is None:
                _save_telemetry(session, args.telemetry_out)
                return 1
        elif args.slo:
            # Route through the checkpointing layer so the run pays (and
            # accounts, as checkpoint.sim_seconds) realistic persistence
            # overhead — the numerator of the overhead-fraction objective.
            result = CheckpointedEmbedder(embedder).embed_with_checkpoints(
                edges, n_nodes
            )
        else:
            result = embedder.embed_edges(edges, n_nodes)
    print(
        f"{name}: embedded {n_nodes:,} nodes in"
        f" {format_seconds(result.sim_seconds)} simulated"
        f" ({format_seconds(project_full_scale(result.sim_seconds, scale))}"
        f" projected), {result.n_spmm} SpMM ops,"
        f" {result.spmm_fraction * 100:.0f}% in SpMM"
    )
    if args.output:
        np.save(args.output, result.embedding)
        print(f"embedding saved to {args.output}")
    if session is not None:
        session.add_cost_trace("embed", result.trace)
    slo_ok = True
    if args.slo:
        from repro.obs.observatory import SLOSpec, evaluate_slo, render_slo

        slo_report = evaluate_slo(session.records(), SLOSpec.load(args.slo))
        print(render_slo(slo_report))
        session.event(
            "slo",
            spec=args.slo,
            ok=slo_report.ok,
            violations=[r.objective.name for r in slo_report.violations],
            burn_rates={
                r.objective.name: r.burn_rate for r in slo_report.results
            },
        )
        slo_ok = slo_report.ok
    _save_telemetry(session, args.telemetry_out)
    return 0 if slo_ok else 1


def cmd_spmm(args: argparse.Namespace) -> int:
    edges, n_nodes, scale, name = _load_graph(args)
    config = _config_from_args(args, scale)
    matrix = edges_to_csdb(edges, n_nodes)
    dense = np.random.default_rng(0).standard_normal((n_nodes, args.dim))
    session = _telemetry_session(args, "spmm", name)
    engine = SpMMEngine(
        config,
        tracer=session.tracer if session else None,
        metrics=session.metrics if session else None,
    )
    # The real backends only exist at compute time — run the real
    # kernels there so the pool (and its per-partition telemetry) is
    # actually exercised; the simulated default stays a pure cost-model
    # pass unless --repeat asks for measured kernel walls.
    repeat = max(int(getattr(args, "repeat", 1) or 1), 1)
    compute = (
        config.parallel.backend is not ExecBackend.SIMULATED or repeat > 1
    )
    result = engine.multiply(matrix, dense, compute=compute)
    if repeat > 1:
        # Cold-vs-warm: call 1 paid pool start-up and operand staging
        # (the shared copy of the matrix, the mapped scratch buffers);
        # later calls reuse them, so their kernel wall is the warm-path
        # cost that Chebyshev iterations and serve requests actually
        # pay.
        walls = [result.kernel_wall_seconds]
        for _ in range(repeat - 1):
            walls.append(
                engine.multiply(matrix, dense, compute=True)
                .kernel_wall_seconds
            )
        cold, warm = walls[0], min(walls[1:])
        print(
            f"{name}: kernel wall over {repeat} calls"
            f" (backend={config.parallel.backend.value})"
        )
        print(
            format_table(
                ["call", "kernel wall", "vs cold"],
                [
                    [
                        str(i + 1) + (" (cold)" if i == 0 else ""),
                        format_seconds(wall),
                        f"{cold / wall:.2f}x" if wall > 0 else "-",
                    ]
                    for i, wall in enumerate(walls)
                ],
            )
        )
        print(
            f"cold {format_seconds(cold)} -> best warm"
            f" {format_seconds(warm)}"
            f" ({cold / warm:.2f}x)" if warm > 0 else ""
        )
    print(
        f"{name}: SpMM over {matrix.nnz:,} nnz in"
        f" {format_seconds(result.sim_seconds)} simulated"
        f" ({result.throughput_nnz_per_s / 1e6:.1f} Mnnz/s)"
    )
    total = result.trace.total_seconds
    rows = [
        [category, format_seconds(seconds), f"{seconds / total * 100:.1f}%"]
        for category, seconds in sorted(
            result.trace.breakdown().items(), key=lambda kv: -kv[1]
        )
    ]
    print(format_table(["step", "time (sum over threads)", "share"], rows))
    if session is not None:
        session.add_cost_trace("spmm", result.trace)
    _save_telemetry(session, args.telemetry_out)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    print(render_report_file(args.trace))
    return 0


def _load_run(spec: str) -> list:
    """Records of one diff side: a JSONL path or a stored baseline.

    Anything that exists on disk is read as a telemetry file; otherwise
    the name (or raw content key) is resolved against the baseline
    store, where payloads of the ``{"records": [...]}`` shape (see
    ``benchmarks/common.publish_baseline``) hold a full export.
    """
    from repro.obs.live import load_records

    if Path(spec).is_file():
        return load_records(spec)
    from repro.obs.observatory import BaselineStore

    try:
        payload = BaselineStore().load(spec)
    except KeyError:
        raise SystemExit(
            f"{spec}: neither a telemetry file nor a stored baseline"
        )
    return payload.get("records", [])


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.observatory import diff_runs, render_diff

    report = diff_runs(
        _load_run(args.run_a),
        _load_run(args.run_b),
        threshold=args.threshold,
        include_profile=args.profile,
        include_placement=args.shard_placement,
        include_attribution=args.attribution,
    )
    print(render_diff(report))
    return 1 if report.regressions else 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.bench.harness import format_seconds, format_table
    from repro.obs.live import load_records
    from repro.obs.observatory import (
        build_profile,
        hot_spans,
        write_collapsed,
    )

    records = load_records(args.trace)
    spans = [r for r in records if r.get("type") == "span"]
    profile = build_profile(spans)
    rows = [
        [
            ";".join(node.path[1:]),
            node.calls,
            format_seconds(node.sim_self),
            format_seconds(node.sim_total),
            format_seconds(node.wall_self),
        ]
        for node in hot_spans(profile, top_n=args.top)
    ]
    print(
        format_table(
            ["span path", "calls", "sim self", "sim total", "wall self"],
            rows,
            title=(
                f"Profile of {args.trace}"
                f" ({format_seconds(profile.sim_total)} simulated total)"
            ),
        )
    )
    if args.out:
        write_collapsed(profile, args.out, clock=args.clock)
        print(f"collapsed stacks ({args.clock} clock) written to {args.out}")
    return 0


def cmd_perf_gate(args: argparse.Namespace) -> int:
    from repro.obs.observatory import (
        BaselineStore,
        build_profile,
        render_gate,
        run_perf_gate,
        write_collapsed,
    )
    from repro.obs.observatory.perfgate import DEFAULT_TRAJECTORY

    store = BaselineStore(args.baseline_dir) if args.baseline_dir else None
    trajectory = args.trajectory if args.trajectory else DEFAULT_TRAJECTORY
    report = run_perf_gate(
        store=store,
        threshold=args.threshold,
        update_baseline=args.update_baseline,
        faults_path=args.faults,
        trajectory_path=None if args.no_trajectory else trajectory,
        live_path=args.live,
    )
    print(render_gate(report, threshold=args.threshold))
    if args.live:
        print(f"live stream closed at {args.live}")
    wall_ok = True
    if args.wall != "off":
        from repro.obs.observatory import render_wall, run_wall_gate

        wall_report = run_wall_gate(
            store=store,
            mode=args.wall,
            k=args.wall_runs,
            backend=args.exec_backend,
            n_workers=args.workers,
            update_baseline=args.update_baseline,
        )
        print(render_wall(wall_report))
        wall_ok = wall_report.ok
    if args.telemetry_out:
        report.run.session.save(args.telemetry_out)
        print(f"telemetry written to {args.telemetry_out}")
    if args.profile_out:
        spans = report.run.session.tracer.to_records()
        write_collapsed(build_profile(spans), args.profile_out)
        print(f"collapsed stacks written to {args.profile_out}")
    return 0 if (report.ok and wall_ok) else 1


def cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.live import (
        StreamFollower,
        build_top_frame,
        latest_metric_records,
        read_stream,
        render_prom,
        render_top,
    )

    spec = None
    if args.slo:
        from repro.obs.observatory import SLOSpec

        spec = SLOSpec.load(args.slo)

    if args.once:
        if not Path(args.stream).is_file():
            raise SystemExit(f"{args.stream}: no such stream file")
        records, _ = read_stream(args.stream)
        if args.format == "prom":
            print(render_prom(latest_metric_records(records)))
        else:
            print(render_top(build_top_frame(records, spec)))
        return 0

    import time

    follower = StreamFollower(args.stream)
    frames = 0
    try:
        while True:
            follower.poll()
            frame = build_top_frame(follower.records, spec)
            # Clear screen + home, full-screen redraw each frame.
            sys.stdout.write("\x1b[2J\x1b[H" + render_top(frame) + "\n")
            sys.stdout.flush()
            frames += 1
            if follower.closed:
                print("stream closed")
                break
            if args.frames and frames >= args.frames:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_trend(args: argparse.Namespace) -> int:
    from repro.obs.observatory.perfgate import DEFAULT_TRAJECTORY
    from repro.obs.observatory.trend import load_trajectory, render_trend

    path = args.trajectory if args.trajectory else DEFAULT_TRAJECTORY
    points = load_trajectory(path)
    if not points:
        print(f"no trajectory at {path}")
        return 0
    print(render_trend(points, prefix=args.prefix))
    return 0


def cmd_why(args: argparse.Namespace) -> int:
    from repro.obs.forensics import fold_stream, render_waterfall
    from repro.obs.live import load_records

    if not Path(args.stream).is_file():
        raise SystemExit(f"{args.stream}: no such stream file")
    keep = (args.trace_id,) if args.trace_id else ()
    report = fold_stream(
        load_records(args.stream),
        worst_k=max(args.worst, 8),
        keep=keep,
    )
    if args.trace_id:
        tree = report.find(args.trace_id)
        if tree is None:
            raise SystemExit(
                f"{args.trace_id}: no forensic tree in {args.stream}"
                " (was the server run with --live?)"
            )
        trees = [tree]
    else:
        trees = report.worst(args.worst, klass=args.klass)
        if not trees:
            print("no completed requests with forensic trees in stream")
            return 0
    print(
        f"{report.n_requests} requests in {args.stream}"
        f" ({len(report.incidents)} incidents,"
        f" {len(report.trees)} exemplar trees retained)"
    )
    for tree in trees:
        print()
        print(render_waterfall(tree))
    return 0


def cmd_attribute(args: argparse.Namespace) -> int:
    from repro.obs.forensics import fold_stream
    from repro.obs.forensics.blame import ordered_categories
    from repro.obs.live import load_records

    if not Path(args.stream).is_file():
        raise SystemExit(f"{args.stream}: no such stream file")
    report = fold_stream(load_records(args.stream))
    violations = report.verify()
    if args.format == "json":
        import json

        payload = report.to_payload()
        payload["violations"] = violations
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        fractions = report.fractions()
        rows = []
        for klass in sorted(report.attribution):
            blame = report.attribution[klass]
            for category in ordered_categories(blame):
                rows.append(
                    [
                        klass,
                        category,
                        format_seconds(blame[category]),
                        f"{fractions[klass].get(category, 0.0) * 100:5.1f}%",
                    ]
                )
        print(
            format_table(
                ["class", "category", "seconds", "fraction"],
                rows,
                title=(
                    f"tail-latency blame over {report.n_requests} requests"
                    f" ({len(report.incidents)} incidents)"
                ),
            )
        )
        for klass, overlap in sorted(report.refresh_overlap.items()):
            print(
                f"checkpointer overlap ({klass}):"
                f" {format_seconds(overlap)} — off the request clock"
            )
    if violations:
        print(
            f"INVARIANT VIOLATED: {len(violations)} request(s) whose blame"
            " does not sum to their simulated latency:", file=sys.stderr,
        )
        for violation in violations[:10]:
            print(f"  {violation}", file=sys.stderr)
        if args.check:
            return 2
    return 0


def cmd_baselines(args: argparse.Namespace) -> int:
    import json

    from repro.obs.observatory import BaselineStore

    store = BaselineStore(args.baseline_dir) if args.baseline_dir else BaselineStore()
    if args.baselines_command == "list":
        rows = [[name, store.resolve(name) or "-"] for name in store.names()]
        if rows:
            print(format_table(["ref", "key"], rows, title="baseline refs"))
        else:
            print("no baseline refs")
        unreferenced = store.unreferenced_keys()
        print(
            f"{len(store.keys())} object(s), {len(unreferenced)} unreferenced"
            + (" (gc candidates)" if unreferenced else "")
        )
        return 0
    if args.baselines_command == "show":
        try:
            payload = store.load(args.name)
        except KeyError:
            raise SystemExit(f"{args.name}: no such baseline ref or object")
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    # gc
    doomed = store.gc(dry_run=not args.apply)
    if not doomed:
        print("nothing to gc: every object is referenced")
        return 0
    verb = "deleted" if args.apply else "would delete"
    for key in doomed:
        print(f"{verb} {key}")
    if not args.apply:
        print(f"dry run: {len(doomed)} object(s); re-run with --apply to delete")
    return 0


def cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.memsim.clock import VirtualClock
    from repro.serve import (
        EmbeddingBackend,
        EmbeddingServer,
        RequestTrace,
        ServePolicy,
    )

    edges, n_nodes, scale, name = _load_graph(args)
    config = _config_from_args(args, scale)
    # An SLO evaluation needs the run's metric records even when no
    # telemetry file was requested, so force an in-memory session.
    session = _telemetry_session(
        args, "serve-sim", name, force=bool(args.slo)
    )
    embedder = OMeGaEmbedder(
        config,
        tracer=session.tracer if session else None,
        metrics=session.metrics if session else None,
    )
    metrics = embedder.metrics

    plan = None
    if args.faults:
        plan = FaultPlan.load(args.faults)
    elif args.fault_seed is not None:
        plan = FaultPlan.random_serve(
            seed=args.fault_seed, n_events=args.fault_events
        )
        if args.shards:
            # One seed drives both layers of chaos: serve-level stalls
            # and process-level shard kills.
            shard_plan = FaultPlan.random_shard(
                seed=args.fault_seed, n_shards=args.shards, max_lookup=8
            )
            plan = FaultPlan(
                events=plan.events + shard_plan.events, seed=plan.seed
            )
    injector = FaultInjector(plan, metrics) if plan is not None else None
    if session is not None and plan is not None:
        session.event(
            "fault_plan", path=args.faults, seed=plan.seed,
            events=[event.to_dict() for event in plan.events],
        )
    if plan is not None and args.save_faults:
        plan.save(args.save_faults)
        print(f"fault plan written to {args.save_faults}")

    shard_info = None
    if args.shards:
        from repro.serve.sharded import ShardedEmbeddingBackend
        from repro.shard import ShardPolicy, SupervisorPolicy

        backend = ShardedEmbeddingBackend(
            embedder,
            edges,
            n_nodes,
            # --no-supervisor is the full unsupervised arm: no repairs
            # AND no hedging, so a lost shard range is visibly lost.
            shard_policy=ShardPolicy(
                n_shards=args.shards,
                n_replicas=args.replicas,
                hedge_enabled=not args.no_supervisor,
                checkpoint_interval=args.checkpoint_interval,
                staleness_bound=args.staleness_bound,
            ),
            supervisor_policy=(
                None
                if args.no_supervisor
                else SupervisorPolicy(reshard_imbalance=args.reshard)
            ),
            faults=injector,
            metrics=metrics,
            stream=session.stream if session else None,
        )
    else:
        backend = EmbeddingBackend(
            embedder, edges, n_nodes, faults=injector, metrics=metrics
        )
    try:
        warmup_s = backend.warm_up()
        per_node = backend.compute_cost(1)
        if args.trace:
            trace = RequestTrace.load(args.trace)
        else:
            trace = RequestTrace.synthesize(
                seed=args.trace_seed,
                n_requests=args.requests,
                per_node_cost_s=per_node,
                load=args.load,
            )
        if args.save_trace:
            trace.save(args.save_trace)
            print(f"request trace written to {args.save_trace}")

        # Calibrate the time-based policy knobs to the mean interactive
        # request (the class with the tight deadlines).
        policy = ServePolicy.calibrated(
            per_node * 8.5,
            queue_limit=args.queue_limit,
            breaker_enabled=not args.no_breaker,
            shedding_enabled=not args.no_shedding,
            deadline_aware=not args.no_deadline_aware,
        )
        server = EmbeddingServer(
            backend,
            policy,
            clock=VirtualClock(),
            metrics=metrics,
            tracer=session.tracer if session else None,
            faults=injector,
            stream=session.stream if session else None,
        )
        report = server.run_trace(trace)
        if args.shards:
            shard_info = backend.shard_summary()
    finally:
        if args.shards:
            backend.close()
    summary = report.summary()
    health = server.healthz()

    fidelity = summary["fidelity"]
    rows = [
        ["submitted", str(summary["submitted"]), ""],
        ["served", str(summary["served"]), ""],
    ] + [
        [f"  {level}", str(count), ""]
        for level, count in sorted(fidelity.items())
    ] + [
        ["shed", str(summary["shed"]), ""],
        ["deadline exceeded", str(summary["deadline_exceeded"]), ""],
        ["failed", str(summary["failed"]), ""],
        ["p50 latency", format_seconds(summary["p50_latency_s"]), ""],
        ["p99 latency", format_seconds(summary["p99_latency_s"]), ""],
        ["breaker trips", str(health["breaker_trips"]), ""],
        ["warmup (simulated)", format_seconds(warmup_s), ""],
    ]
    if shard_info is not None:
        rows += [
            ["shards", str(shard_info["n_shards"]), ""],
            ["shard restarts", str(shard_info["restarts"]), ""],
            ["shard promotions", str(shard_info["promotions"]), ""],
            ["bg checkpoints", str(shard_info["bg_checkpoints"]), ""],
            ["max staleness", str(shard_info["staleness_max"]), ""],
            ["reshard epoch", str(shard_info["reshard_epoch"]), ""],
            [
                "quarantined checkpoints",
                str(shard_info["corrupt_checkpoints"]),
                "",
            ],
            ["shard stale rows", str(shard_info["stale_rows"]), ""],
            [
                "shard hedged",
                str(
                    shard_info["hedged_checkpoint"]
                    + shard_info["hedged_replica"]
                ),
                "",
            ],
        ]
    print(
        format_table(
            ["metric", "value", ""],
            rows,
            title=f"serve-sim on {name} ({len(trace)} trace requests)",
        )
    )
    print(
        f"accounting {'balanced' if report.balanced else 'BROKEN'};"
        f" unhandled exceptions: {health['unhandled_exceptions']};"
        f" final breaker state: {health['breaker_state']}"
    )
    if session is not None:
        session.event(
            "serve_summary",
            breaker_trips=health["breaker_trips"],
            breaker_state=health["breaker_state"],
            unhandled_exceptions=health["unhandled_exceptions"],
            **summary,
        )
        if shard_info is not None:
            session.event("shard_summary", **shard_info)
    slo_ok = True
    if args.slo:
        from repro.obs.observatory import SLOSpec, evaluate_slo, render_slo

        slo_report = evaluate_slo(session.records(), SLOSpec.load(args.slo))
        print(render_slo(slo_report))
        session.event(
            "slo",
            spec=args.slo,
            ok=slo_report.ok,
            violations=[r.objective.name for r in slo_report.violations],
            burn_rates={
                r.objective.name: r.burn_rate for r in slo_report.results
            },
        )
        slo_ok = slo_report.ok
    _save_telemetry(session, args.telemetry_out)
    return 0 if report.balanced and health["healthy"] and slo_ok else 1


def cmd_compare(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.graph)
    plan = FaultPlan.load(args.faults) if args.faults else None
    session = None
    if args.telemetry_out or args.live:
        session = TelemetrySession(
            meta={
                "command": "compare",
                "graph": dataset.name,
                "threads": args.threads,
                "dim": args.dim,
                "faults": args.faults,
            }
        )
        if args.live:
            session.stream_to(args.live)
    if session is not None and plan is not None:
        session.event(
            "fault_plan", path=args.faults, seed=plan.seed,
            events=[event.to_dict() for event in plan.events],
        )
    parallel = _parallel_from_args(args)
    rows = []
    with _follow_stream(args):
        for arm in standard_arms(n_threads=args.threads, dim=args.dim):
            arm = replace(
                arm, config=arm.config.with_overrides(parallel=parallel)
            )
            result = run_arm(
                arm,
                dataset,
                tracer=session.tracer if session else None,
                metrics=session.metrics if session else None,
                faults=plan,
            )
            if session is not None:
                session.event(
                    "arm", system=arm.name, status=result.status,
                    sim_seconds=result.sim_seconds,
                )
                if result.result is not None:
                    session.add_cost_trace(arm.name, result.result.trace)
            rows.append(
                [
                    arm.name,
                    result.status,
                    format_seconds(
                        project_full_scale(result.sim_seconds, dataset.scale)
                    ),
                ]
            )
    print(
        format_table(
            ["system", "status", "projected time"],
            rows,
            title=f"Fig. 12 arms on {dataset.name}",
        )
    )
    _save_telemetry(session, args.telemetry_out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OMeGa reproduction — heterogeneous-memory graph embedding",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the Table I analogues")
    sub.add_parser("probe", help="print the Fig. 9 PM characterization")
    calibrate = sub.add_parser(
        "calibrate", help="measured headline ratios vs the paper"
    )
    calibrate.add_argument("--graph", default="LJ")
    calibrate.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="export per-arm spans and calibration points as JSONL",
    )

    embed = sub.add_parser("embed", help="embed a graph")
    embed.add_argument("graph", help="Table I name (PK..FR) or edge-list path")
    embed.add_argument("--output", help="save the embedding as .npy")
    embed.add_argument(
        "--faults",
        metavar="PLAN",
        help="run under a JSON fault plan with stage checkpoints",
    )
    embed.add_argument(
        "--resume",
        action="store_true",
        help="recover from injected crashes via the checkpoint log",
    )
    embed.add_argument(
        "--slo", metavar="SPEC",
        help="evaluate a JSON SLO spec (stage sim-time budgets,"
        " checkpoint-overhead fraction) over the run's telemetry;"
        " violations exit nonzero",
    )
    _add_engine_arguments(embed)

    spmm = sub.add_parser("spmm", help="run one instrumented SpMM")
    spmm.add_argument("graph", help="Table I name (PK..FR) or edge-list path")
    spmm.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run the multiply N times and report cold-vs-warm kernel"
            " wall per call (call 1 pays pool start-up and operand"
            " staging; later calls ride the persistent segment cache)"
        ),
    )
    _add_engine_arguments(spmm)

    compare = sub.add_parser("compare", help="run the Fig. 12 system arms")
    compare.add_argument("graph", choices=list(DATASET_NAMES))
    compare.add_argument("--threads", type=int, default=16)
    compare.add_argument("--dim", type=int, default=32)
    compare.add_argument(
        "--faults",
        metavar="PLAN",
        help="run every arm under the same JSON fault plan"
        " (fresh injector per arm; crashes resume from checkpoints)",
    )
    compare.add_argument(
        "--exec-backend",
        choices=[b.value for b in ExecBackend],
        default=None,
        help="execution backend for every arm's real kernels",
    )
    compare.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the shared-memory backend",
    )
    compare.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="export per-arm spans, metrics and cost ledgers as JSONL",
    )
    compare.add_argument(
        "--live", metavar="PATH",
        help="stream per-arm telemetry incrementally to a JSONL file"
        " while the arms run (tail it with 'repro top PATH')",
    )
    compare.add_argument(
        "--follow", action="store_true",
        help="with --live: also tail the stream in this terminal,"
        " printing arms and stages as they complete",
    )

    report = sub.add_parser(
        "report", help="render a telemetry JSONL file as breakdown tables"
    )
    report.add_argument("trace", help="path to a --telemetry-out JSONL file")

    diff = sub.add_parser(
        "diff",
        help="per-stage/per-metric deltas between two telemetry exports",
    )
    diff.add_argument(
        "run_a", help="baseline: telemetry JSONL file or stored baseline name"
    )
    diff.add_argument(
        "run_b", help="candidate: telemetry JSONL file or stored baseline name"
    )
    diff.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative regression threshold on time-like series"
        " (default 0.05 = 5%%; breaches exit nonzero)",
    )
    diff.add_argument(
        "--profile", action="store_true",
        help="also diff per-node simulated self seconds of the folded"
        " profiles (threshold-gated like the stage series)",
    )
    diff.add_argument(
        "--shard-placement", action="store_true",
        help="also diff the shard.placement.* gauges: real per-shard"
        " rows/nnz and balance/edge-cut vs the DistDGL and DistGER"
        " partitioning cost models",
    )
    diff.add_argument(
        "--attribution", action="store_true",
        help="also diff the per-class tail-latency blame fractions"
        " (serve.blame_seconds), gated — a latency mix shifting toward"
        " queue/hedge blame fails even when totals look flat",
    )

    profile = sub.add_parser(
        "profile",
        help="fold a telemetry export's spans into a flamegraph profile",
    )
    profile.add_argument("trace", help="path to a --telemetry-out JSONL file")
    profile.add_argument(
        "--out", metavar="PATH",
        help="write collapsed-stack text (flamegraph.pl / speedscope input)",
    )
    profile.add_argument(
        "--clock", choices=("sim", "wall"), default="sim",
        help="which clock the collapsed counts measure (default: sim)",
    )
    profile.add_argument(
        "--top", type=int, default=15,
        help="rows in the printed hot-span table",
    )

    gate = sub.add_parser(
        "perf-gate",
        help="run the pinned micro-bench suite against the stored baseline",
    )
    gate.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative regression threshold on simulated stage seconds",
    )
    gate.add_argument(
        "--baseline-dir", metavar="DIR",
        help="baseline store root (default: benchmarks/baselines/)",
    )
    gate.add_argument(
        "--update-baseline", action="store_true",
        help="pin this run's stages as the new baseline",
    )
    gate.add_argument(
        "--faults", metavar="PLAN",
        help="run the suite under a fault plan (chaos check of the gate;"
        " never updates the baseline or trajectory)",
    )
    gate.add_argument(
        "--trajectory", metavar="PATH",
        help="trajectory file to append to (default: BENCH_omega.json)",
    )
    gate.add_argument(
        "--no-trajectory", action="store_true",
        help="skip appending a trajectory point",
    )
    gate.add_argument(
        "--profile-out", metavar="PATH",
        help="write the suite's collapsed-stack profile (CI artifact)",
    )
    gate.add_argument(
        "--telemetry-out", metavar="PATH",
        help="export the suite's telemetry as JSONL",
    )
    gate.add_argument(
        "--live", metavar="PATH",
        help="stream the suite's telemetry to a JSONL file while it"
        " runs (tail it with 'repro top PATH'; CI uploads it)",
    )
    gate.add_argument(
        "--wall", choices=["off", "report", "gate"], default="off",
        help="wall-clock arm: 'report' prints median-of-k timings with"
        " the noise band (never fails), 'gate' enforces regressions"
        " beyond the band",
    )
    gate.add_argument(
        "--wall-runs", type=int, default=5, metavar="K",
        help="repeats per wall probe (medians are compared)",
    )
    gate.add_argument(
        "--exec-backend",
        choices=[b.value for b in ExecBackend],
        default=ExecBackend.SIMULATED.value,
        help="execution backend timed by the wall-clock arm",
    )
    gate.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes for the wall arm's shared-memory backend",
    )

    serve = sub.add_parser(
        "serve-sim",
        help="replay a request trace against the resilient embedding server",
    )
    serve.add_argument(
        "graph", help="Table I name (PK..FR) or edge-list path"
    )
    serve.add_argument(
        "--trace", metavar="PATH",
        help="request trace JSON (RequestTrace.save); default: synthesize",
    )
    serve.add_argument(
        "--requests", type=int, default=500,
        help="synthesized trace length (ignored with --trace)",
    )
    serve.add_argument(
        "--trace-seed", type=int, default=0,
        help="seed of the synthesized trace (ignored with --trace)",
    )
    serve.add_argument(
        "--load", type=float, default=0.8,
        help="offered utilization of the synthesized trace",
    )
    serve.add_argument(
        "--save-trace", metavar="PATH",
        help="write the (possibly synthesized) trace as JSON",
    )
    serve.add_argument(
        "--faults", metavar="PLAN",
        help="serve-time fault plan JSON (stalls, bursts, PM degradation)",
    )
    serve.add_argument(
        "--fault-seed", type=int,
        help="synthesize a serve-time fault plan from this seed",
    )
    serve.add_argument(
        "--fault-events", type=int, default=4,
        help="events in the synthesized fault plan",
    )
    serve.add_argument(
        "--save-faults", metavar="PATH",
        help="write the active fault plan as JSON",
    )
    serve.add_argument("--queue-limit", type=int, default=64)
    serve.add_argument(
        "--no-breaker", action="store_true",
        help="disable the circuit breaker (chaos-comparison arm)",
    )
    serve.add_argument(
        "--no-shedding", action="store_true",
        help="disable load shedding (unbounded admission queue)",
    )
    serve.add_argument(
        "--no-deadline-aware", action="store_true",
        help="disable deadline-aware rung selection in the ladder",
    )
    serve.add_argument(
        "--slo", metavar="SPEC",
        help="evaluate a JSON SLO spec over the replay's telemetry"
        " (per-objective pass/fail + burn rate; violations exit nonzero)",
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="serve the full tier from N shard processes (0 = monolithic);"
        " with --fault-seed the plan also gets seeded shard chaos",
    )
    serve.add_argument(
        "--no-supervisor", action="store_true",
        help="disable the shard supervisor (crashed shards stay down)",
    )
    serve.add_argument(
        "--checkpoint-interval", type=int, default=0, metavar="N",
        help="background-checkpoint each shard every N lookups"
        " (staggered across shards; 0 = no cadence)",
    )
    serve.add_argument(
        "--staleness-bound", type=int, default=0, metavar="V",
        help="force a background checkpoint whenever a shard falls V"
        " table versions behind (0 = unbounded)",
    )
    serve.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="N warm standby replicas per shard; the supervisor promotes"
        " one on primary death instead of replaying the WAL",
    )
    serve.add_argument(
        "--reshard", type=float, default=0.0, metavar="RATIO",
        help="split the hottest shard online when served-row load"
        " imbalance (max/mean) exceeds RATIO (0 = never reshard)",
    )
    _add_engine_arguments(serve)

    top = sub.add_parser(
        "top",
        help="real-time ops view over a --live telemetry stream",
    )
    top.add_argument("stream", help="path to a --live stream JSONL file")
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame from the stream's current contents",
    )
    top.add_argument(
        "--format", choices=("table", "prom"), default="table",
        help="frame format with --once: human table or Prometheus"
        " exposition text",
    )
    top.add_argument(
        "--interval", type=float, default=0.5, metavar="S",
        help="seconds between follow-mode polls (default 0.5)",
    )
    top.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="stop after N follow-mode frames (0 = until stream close)",
    )
    top.add_argument(
        "--slo", metavar="SPEC",
        help="JSON SLO spec to evaluate per frame (burn-rate column)",
    )

    why = sub.add_parser(
        "why",
        help="per-request tail-latency forensics: render the causal tree"
        " of a request (or the slowest N) from a --live stream",
    )
    why.add_argument("stream", help="path to a --live stream JSONL file")
    why.add_argument(
        "trace_id", nargs="?", default=None,
        help="render this request's tree (default: the slowest --worst N)",
    )
    why.add_argument(
        "--worst", type=int, default=3, metavar="N",
        help="without a trace id: render the N slowest retained"
        " exemplars (default 3)",
    )
    why.add_argument(
        "--klass", metavar="CLASS",
        help="restrict --worst to one request class"
        " (e.g. interactive, batch)",
    )

    attribute = sub.add_parser(
        "attribute",
        help="fold a --live stream into the per-class tail-latency"
        " blame table (queue/breaker/shard-hedge/stale/kernel)",
    )
    attribute.add_argument(
        "stream", help="path to a --live stream JSONL file"
    )
    attribute.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="human table or the JSON payload CI consumes",
    )
    attribute.add_argument(
        "--check", action="store_true",
        help="exit 2 if any request's blame does not sum to its"
        " simulated latency (the critical-path invariant)",
    )

    trend = sub.add_parser(
        "trend",
        help="per-series perf trajectories over BENCH_omega.json",
    )
    trend.add_argument(
        "--trajectory", metavar="PATH",
        help="trajectory file (default: BENCH_omega.json)",
    )
    trend.add_argument(
        "--prefix", metavar="P",
        help="only series whose name starts with P (e.g. 'stages.')",
    )

    baselines = sub.add_parser(
        "baselines",
        help="inspect the baseline store (refs, payloads, gc)",
    )
    baselines.add_argument(
        "--baseline-dir", metavar="DIR",
        help="baseline store root (default: benchmarks/baselines/)",
    )
    baselines_sub = baselines.add_subparsers(
        dest="baselines_command", required=True
    )
    baselines_sub.add_parser("list", help="refs, keys and gc candidates")
    show = baselines_sub.add_parser("show", help="print one stored payload")
    show.add_argument("name", help="ref name or raw content key")
    gc = baselines_sub.add_parser(
        "gc", help="drop unreferenced objects (dry run unless --apply)"
    )
    gc.add_argument(
        "--apply", action="store_true",
        help="actually delete the unreferenced objects",
    )

    return parser


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.bench.calibration import calibration_report, format_report

    session = None
    if args.telemetry_out:
        session = TelemetrySession(
            meta={"command": "calibrate", "graph": args.graph}
        )
    points = calibration_report(
        args.graph,
        tracer=session.tracer if session else None,
        metrics=session.metrics if session else None,
    )
    print(format_report(points))
    if session is not None:
        for point in points:
            session.event(
                "calibration_point", ratio=point.name,
                paper_value=point.paper_value, measured=point.measured,
                in_band=point.in_band,
            )
    _save_telemetry(session, args.telemetry_out)
    return 0 if all(p.in_band for p in points) else 1


COMMANDS = {
    "datasets": cmd_datasets,
    "probe": cmd_probe,
    "calibrate": cmd_calibrate,
    "embed": cmd_embed,
    "spmm": cmd_spmm,
    "compare": cmd_compare,
    "report": cmd_report,
    "serve-sim": cmd_serve_sim,
    "diff": cmd_diff,
    "profile": cmd_profile,
    "perf-gate": cmd_perf_gate,
    "top": cmd_top,
    "why": cmd_why,
    "attribute": cmd_attribute,
    "trend": cmd_trend,
    "baselines": cmd_baselines,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
