"""Shared fixtures and reporting helpers for the benchmark suite.

Every bench module regenerates one table or figure of the paper: it runs
the experiment (real kernels + simulated time), prints the same
rows/series the paper reports, and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can reference them.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core import OMeGaConfig, SpMMEngine
from repro.graphs import Dataset, load_dataset
from repro.obs import TelemetrySession

#: Graphs used by most SpMM-level experiments (Figs. 14-16, Table II).
SPMM_GRAPHS = ("PK", "LJ", "OR", "TW", "TW-2010")
#: All six Table I graphs (end-to-end experiments).
ALL_GRAPHS = ("PK", "LJ", "OR", "TW", "TW-2010", "FR")
#: The paper's thread count and embedding dimension.
N_THREADS = 30
DIM = 32

RESULTS_DIR = Path(__file__).parent / "results"

_dataset_cache: dict[str, Dataset] = {}


def dataset(name: str) -> Dataset:
    """Load (and cache) a Table I analogue."""
    if name not in _dataset_cache:
        _dataset_cache[name] = load_dataset(name)
    return _dataset_cache[name]


def dense_operand(graph: Dataset, dim: int = DIM) -> np.ndarray:
    """Deterministic dense operand for SpMM experiments."""
    return np.random.default_rng(0).standard_normal((graph.n_nodes, dim))


def engine_for(
    graph: Dataset, session: TelemetrySession | None = None, **overrides
) -> SpMMEngine:
    """Engine with the paper's default configuration for a dataset.

    Pass a :func:`telemetry_session` to capture the engine's spans and
    metrics; :func:`save_telemetry` writes them next to the report.
    """
    base = dict(n_threads=N_THREADS, dim=DIM, capacity_scale=graph.scale)
    base.update(overrides)
    return SpMMEngine(
        OMeGaConfig(**base),
        tracer=session.tracer if session else None,
        metrics=session.metrics if session else None,
    )


def telemetry_session(name: str, **meta) -> TelemetrySession:
    """Telemetry session for one bench module's experiment."""
    return TelemetrySession(meta={"benchmark": name, **meta})


def save_telemetry(session: TelemetrySession, name: str) -> Path:
    """Persist a session as ``benchmarks/results/<name>.telemetry.jsonl``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.telemetry.jsonl"
    session.save(path)
    return path


def publish_baseline(
    session: TelemetrySession, name: str, store=None
) -> str:
    """Pin a session's telemetry in the baseline store under ``name``.

    Returns the content key.  Stored runs are addressable by name or key
    from ``repro diff`` (e.g. ``repro diff fig7_baseline new.jsonl``),
    so a bench can publish today's numbers and future runs diff against
    them without keeping loose JSONL files around.
    """
    from repro.obs import BaselineStore

    store = store if store is not None else BaselineStore()
    return store.put({"records": session.records()}, name=name)


def write_report(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
