"""Chaos sweep: crash/recovery economics of stage checkpoints.

For every pipeline stage boundary (and both crash phases relative to
the WAL commit), inject a crash, resume from the last durable
checkpoint, and compare the *recovered* simulated seconds (work the
checkpoint saved) against the *recomputed* seconds (work that had to be
redone).  Every resumed run must produce an embedding bit-identical to
the uninterrupted one — robustness never costs quality.
"""

import numpy as np
from common import (  # noqa: F401
    dataset,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_seconds, format_table
from repro.core import OMeGaConfig, OMeGaEmbedder, PIPELINE_STAGES
from repro.faults import FaultEvent, FaultInjector, FaultPlan, InjectedCrash
from repro.memsim.persistence import CheckpointedEmbedder
from repro.obs import MetricsRegistry

DIM = 32
N_THREADS = 16


def _config(graph):
    return OMeGaConfig(
        n_threads=N_THREADS, dim=DIM, capacity_scale=graph.scale
    )


def _sweep(graph):
    fresh = OMeGaEmbedder(_config(graph)).embed_edges(
        graph.edges, graph.n_nodes
    )
    session = telemetry_session("chaos_recovery", graph=graph.name)
    rows = []
    for stage in PIPELINE_STAGES:
        for phase in ("after_commit", "before_commit"):
            plan = FaultPlan(
                events=(FaultEvent("crash", stage, phase=phase),)
            )
            metrics = MetricsRegistry()
            embedder = OMeGaEmbedder(_config(graph), metrics=metrics)
            checkpointed = CheckpointedEmbedder(embedder)
            injector = FaultInjector(plan, metrics)
            try:
                checkpointed.embed_with_checkpoints(
                    graph.edges, graph.n_nodes, faults=injector
                )
                raise AssertionError(f"crash at {stage}/{phase} never fired")
            except InjectedCrash:
                pass
            result = checkpointed.resume(faults=injector)
            assert np.array_equal(result.embedding, fresh.embedding), (
                f"resume after crash at {stage}/{phase} is not bit-identical"
            )
            recovered = metrics.counter(
                "checkpoint.recovered_sim_seconds"
            ).value
            recomputed = result.sim_seconds - recovered
            session.event(
                "crash_recovery", stage=stage, phase=phase,
                recovered_stages=metrics.counter(
                    "checkpoint.recovered_stages"
                ).value,
                recovered_sim_seconds=recovered,
                recomputed_sim_seconds=recomputed,
            )
            rows.append(
                (stage, phase, result.sim_seconds, recovered, recomputed)
            )
    save_telemetry(session, "chaos_recovery")
    return fresh, rows


def test_chaos_recovery(run_once):
    graph = dataset("PK")
    fresh, rows = run_once(lambda: _sweep(graph))
    table = format_table(
        ["crash stage", "phase", "total", "recovered", "recomputed"],
        [
            [
                stage,
                phase,
                format_seconds(total),
                format_seconds(recovered),
                format_seconds(recomputed),
            ]
            for stage, phase, total, recovered, recomputed in rows
        ],
        title=(
            "Chaos sweep — simulated seconds recovered from stage"
            f" checkpoints vs recomputed (PK, fresh run"
            f" {format_seconds(fresh.sim_seconds)})"
        ),
    )
    write_report("chaos_recovery", table)
    for stage, phase, total, recovered, recomputed in rows:
        # Every resumed run reports the uninterrupted run's total.
        assert total == fresh.sim_seconds
        # A before_commit crash loses that stage's record: strictly
        # less work recovered than the matching after_commit crash.
        if phase == "after_commit" and stage != PIPELINE_STAGES[0]:
            assert recovered > 0.0
    by_key = {(s, p): rec for s, p, _, rec, _ in rows}
    for stage in PIPELINE_STAGES[1:]:
        assert (
            by_key[(stage, "after_commit")]
            >= by_key[(stage, "before_commit")]
        )
