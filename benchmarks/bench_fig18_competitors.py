"""Fig. 18: (a) vs distributed systems; (b) SpMM vs SpMM-oriented systems."""

import numpy as np
from common import (  # noqa: F401
    ALL_GRAPHS,
    DIM,
    N_THREADS,
    SPMM_GRAPHS,
    dataset,
    dense_operand,
    engine_for,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.baselines import (
    DistDGLSimulator,
    DistGERSimulator,
    FusedMMSimulator,
    SEMSpMMSimulator,
    run_arm,
    standard_arms,
)
from repro.bench import format_seconds, format_table, project_full_scale


def test_fig18a_distributed_systems(run_once):
    def experiment():
        omega_arm = standard_arms(n_threads=N_THREADS, dim=DIM)[0]
        rows = []
        for name in ALL_GRAPHS:
            graph = dataset(name)
            omega = run_arm(omega_arm, graph).sim_seconds
            distger = DistGERSimulator().run(graph, dim=DIM).sim_seconds
            distdgl = DistDGLSimulator().run(graph, dim=DIM).sim_seconds
            rows.append((graph, omega, distger, distdgl))
        return rows

    rows = run_once(experiment)
    session = telemetry_session("fig18a_distributed", graphs=list(ALL_GRAPHS))
    for graph, omega, distger, distdgl in rows:
        session.event(
            "distributed_row", graph=graph.name, omega_s=omega,
            distger_s=distger, distdgl_s=distdgl,
        )
    save_telemetry(session, "fig18a_distributed")
    table_rows = [
        [
            graph.name,
            format_seconds(project_full_scale(omega, graph.scale)),
            format_seconds(project_full_scale(distger, graph.scale)),
            format_seconds(project_full_scale(distdgl, graph.scale)),
            f"{distger / omega:.2f}x",
            f"{distdgl / omega:.2f}x",
        ]
        for graph, omega, distger, distdgl in rows
    ]
    ratios = [distdgl / omega for _, omega, _, distdgl in rows]
    table = format_table(
        ["Graph", "OMeGa", "DistGER", "DistDGL", "DistGER/OMeGa", "DistDGL/OMeGa"],
        table_rows,
        title=(
            "Fig. 18(a) — vs distributed systems"
            f" (DistDGL mean {np.mean(ratios):.2f}x; paper: 4.31x;"
            " DistGER comparable, paper: 1.58x on PK)"
        ),
    )
    write_report("fig18a_distributed", table)
    for graph, omega, distger, distdgl in rows:
        assert distdgl > omega  # OMeGa beats DistDGL everywhere
        assert distger > 0.3 * omega  # DistGER competitive, not dominant


def test_fig18b_spmm_systems(run_once):
    def experiment():
        rows = []
        for name in SPMM_GRAPHS + ("FR",):
            graph = dataset(name)
            omega = engine_for(graph).multiply(
                graph.adjacency_csdb(), dense_operand(graph), compute=False
            ).sim_seconds
            sem = SEMSpMMSimulator().run(graph, dim=DIM).sim_seconds
            fused_result = FusedMMSimulator().run(graph, dim=DIM)
            rows.append((graph, omega, sem, fused_result.sim_seconds))
        return rows

    rows = run_once(experiment)
    session = telemetry_session(
        "fig18b_spmm_systems", graphs=list(SPMM_GRAPHS) + ["FR"]
    )
    for graph, omega, sem, fused in rows:
        session.event(
            "spmm_system_row", graph=graph.name, omega_s=omega,
            sem_s=sem, fused_s=fused,
        )
    save_telemetry(session, "fig18b_spmm_systems")
    table_rows = [
        [
            graph.name,
            format_seconds(project_full_scale(omega, graph.scale)),
            format_seconds(project_full_scale(sem, graph.scale)),
            format_seconds(project_full_scale(fused, graph.scale))
            if np.isfinite(fused)
            else "OOM",
            f"{sem / omega:.1f}x",
            f"{fused / omega:.2f}x" if np.isfinite(fused) else "OOM",
        ]
        for graph, omega, sem, fused in rows
    ]
    table = format_table(
        ["Graph", "OMeGa", "SEM-SpMM", "FusedMM", "SEM/OMeGa", "Fused/OMeGa"],
        table_rows,
        title=(
            "Fig. 18(b) — single SpMM vs SpMM-oriented systems"
            " (paper: 15.69x over SEM-SpMM, 2.11-3.26x over FusedMM)"
        ),
    )
    write_report("fig18b_spmm_systems", table)
    for graph, omega, sem, fused in rows:
        assert sem > omega
        if np.isfinite(fused):
            assert fused > omega
