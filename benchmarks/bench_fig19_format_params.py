"""Fig. 19: (a) CSDB vs CSR graph reading; (b/c) WoFP parameter sweeps."""

from common import (  # noqa: F401
    SPMM_GRAPHS,
    dataset,
    dense_operand,
    engine_for,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_seconds, format_table, project_full_scale
from repro.core import OMeGaConfig
from repro.core.embedding import embedder_for_dataset


def test_fig19a_graph_reading(run_once):
    def experiment():
        rows = []
        for name in SPMM_GRAPHS:
            graph = dataset(name)
            embedder = embedder_for_dataset(
                graph, OMeGaConfig(n_threads=30, dim=32)
            )
            csdb = embedder.simulate_graph_read(graph.n_nodes, graph.n_edges)
            csr = embedder.simulate_graph_read_csr(
                graph.n_nodes, graph.n_edges
            )
            csdb_index = graph.adjacency_csdb().index_bytes()
            csr_index = graph.adjacency_csr().index_bytes()
            rows.append((graph, csdb, csr, csdb_index, csr_index))
        return rows

    rows = run_once(experiment)
    session = telemetry_session(
        "fig19a_graph_reading", graphs=list(SPMM_GRAPHS)
    )
    for graph, csdb, csr, csdb_index, csr_index in rows:
        session.event(
            "format_row", graph=graph.name, csdb_read_s=csdb,
            csr_read_s=csr, csdb_index_bytes=csdb_index,
            csr_index_bytes=csr_index,
        )
    save_telemetry(session, "fig19a_graph_reading")
    speedups = [csr / csdb for _, csdb, csr, _, _ in rows]
    table = format_table(
        ["Graph", "CSDB read", "CSR read", "speedup", "CSDB idx B", "CSR idx B"],
        [
            [
                graph.name,
                format_seconds(project_full_scale(csdb, graph.scale)),
                format_seconds(project_full_scale(csr, graph.scale)),
                f"{csr / csdb:.2f}x",
                csdb_index,
                csr_index,
            ]
            for graph, csdb, csr, csdb_index, csr_index in rows
        ],
        title=(
            "Fig. 19(a) — graph reading, CSDB vs CSR"
            f" (mean speedup {sum(speedups) / len(speedups):.2f}x;"
            " paper: 1.35x)"
        ),
    )
    write_report("fig19a_graph_reading", table)
    for (graph, csdb, csr, csdb_index, csr_index), speedup in zip(
        rows, speedups
    ):
        assert 1.0 < speedup < 3.0
        assert csdb_index < csr_index  # the O(|degrees|) vs O(|V|) claim


def _normalized_sweep(parameter, values):
    graph = dataset("PK")
    dense = dense_operand(graph)
    times = []
    for value in values:
        engine = engine_for(graph, **{parameter: value})
        times.append(
            engine.multiply(
                graph.adjacency_csdb(), dense, compute=False
            ).sim_seconds
        )
    best = min(times)
    return [(v, t / best) for v, t in zip(values, times)]


def test_fig19b_eta_sensitivity(run_once):
    values = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5)
    rows = run_once(lambda: _normalized_sweep("eta", values))
    session = telemetry_session("fig19b_eta_sweep", graph="PK")
    for value, normalized in rows:
        session.event("sweep_point", eta=value, normalized_time=normalized)
    save_telemetry(session, "fig19b_eta_sweep")
    table = format_table(
        ["eta", "normalized time"],
        [[f"{v:g}", f"{t:.3f}"] for v, t in rows],
        title="Fig. 19(b) — prefetcher-type threshold eta sweep (PK)",
    )
    write_report("fig19b_eta_sweep", table)
    assert max(t for _, t in rows) < 1.6  # eta is a mild knob


def test_fig19c_sigma_sensitivity(run_once):
    values = (0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8)
    rows = run_once(lambda: _normalized_sweep("sigma", values))
    session = telemetry_session("fig19c_sigma_sweep", graph="PK")
    for value, normalized in rows:
        session.event("sweep_point", sigma=value, normalized_time=normalized)
    save_telemetry(session, "fig19c_sigma_sweep")
    table = format_table(
        ["sigma", "normalized time"],
        [[f"{v:g}", f"{t:.3f}"] for v, t in rows],
        title="Fig. 19(c) — prefetch size sigma sweep (PK)",
    )
    write_report("fig19c_sigma_sweep", table)
    times = [t for _, t in rows]
    # U-shape: too small starves the cache, too large inflates the
    # population cost; the optimum is interior.
    best_index = times.index(min(times))
    assert 0 < best_index < len(times) - 1
    assert times[0] > times[best_index]
    assert times[-1] > times[best_index]
