"""Table I: dataset statistics (paper originals vs scaled analogues)."""

from common import ALL_GRAPHS, run_once, write_report  # noqa: F401

from repro.bench import format_table
from repro.graphs import dataset_table


def test_table1_dataset_statistics(run_once):
    rows = run_once(lambda: dataset_table(ALL_GRAPHS))
    table = format_table(
        [
            "Graph",
            "#nodes (paper)",
            "#edges (paper)",
            "#degrees (paper)",
            "scale",
            "#nodes (ours)",
            "#edges (ours)",
            "#degrees (ours)",
            "mean deg",
            "gini",
        ],
        [
            [
                r["graph"],
                f"{r['paper_nodes'] / 1e6:.2f} M",
                f"{r['paper_edges'] / 1e6:.2f} M",
                r["paper_degrees"],
                r["scale"],
                r["nodes"],
                r["edges"],
                r["degrees"],
                f"{r['mean_degree']:.1f}",
                f"{r['gini']:.2f}",
            ]
            for r in rows
        ],
        title="Table I — dataset statistics (scaled analogues)",
    )
    write_report("table1_datasets", table)
    assert len(rows) == len(ALL_GRAPHS)
