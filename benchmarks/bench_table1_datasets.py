"""Table I: dataset statistics (paper originals vs scaled analogues)."""

from common import (  # noqa: F401
    ALL_GRAPHS,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_table
from repro.graphs import dataset_table


def test_table1_dataset_statistics(run_once):
    rows = run_once(lambda: dataset_table(ALL_GRAPHS))
    session = telemetry_session("table1_datasets", graphs=list(ALL_GRAPHS))
    for r in rows:
        session.event("dataset_row", **r)
    save_telemetry(session, "table1_datasets")
    table = format_table(
        [
            "Graph",
            "#nodes (paper)",
            "#edges (paper)",
            "#degrees (paper)",
            "scale",
            "#nodes (ours)",
            "#edges (ours)",
            "#degrees (ours)",
            "mean deg",
            "gini",
        ],
        [
            [
                r["graph"],
                f"{r['paper_nodes'] / 1e6:.2f} M",
                f"{r['paper_edges'] / 1e6:.2f} M",
                r["paper_degrees"],
                r["scale"],
                r["nodes"],
                r["edges"],
                r["degrees"],
                f"{r['mean_degree']:.1f}",
                f"{r['gini']:.2f}",
            ]
            for r in rows
        ],
        title="Table I — dataset statistics (scaled analogues)",
    )
    write_report("table1_datasets", table)
    assert len(rows) == len(ALL_GRAPHS)
