"""Fig. 13: per-thread running-time distribution, WaTA vs EaTA (LJ)."""

import numpy as np
from common import (  # noqa: F401
    dataset,
    dense_operand,
    engine_for,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.core import AllocationScheme


def _distribution(scheme, session):
    graph = dataset("LJ")
    engine = engine_for(graph, session=session, allocation=scheme)
    result = engine.multiply(
        graph.adjacency_csdb(), dense_operand(graph), compute=False
    )
    return result.thread_stats, result.thread_times


def test_fig13_thread_time_distribution(run_once):
    session = telemetry_session("fig13_tail_latency", graph="LJ")
    stats = run_once(
        lambda: {
            "WaTA": _distribution(
                AllocationScheme.WORKLOAD_BALANCED, session
            ),
            "EaTA": _distribution(AllocationScheme.ENTROPY_AWARE, session),
        }
    )
    for name, (summary, _) in stats.items():
        session.event(
            "thread_distribution", scheme=name, std=summary.std,
            p95=summary.p95, p99=summary.p99, makespan=summary.makespan,
        )
    save_telemetry(session, "fig13_tail_latency")
    lines = ["Fig. 13 — thread running-time distribution on LJ (30 threads)"]
    for name, (summary, times) in stats.items():
        lines.append(
            f"  {name}: std={summary.std * 1e3:.4f} ms"
            f" p95={summary.p95 * 1e3:.4f} ms p99={summary.p99 * 1e3:.4f} ms"
            f" makespan={summary.makespan * 1e3:.4f} ms"
        )
        hist, edges = np.histogram(times, bins=8)
        for count, lo, hi in zip(hist, edges, edges[1:]):
            bar = "#" * count
            lines.append(
                f"    [{lo * 1e3:7.3f}, {hi * 1e3:7.3f}) ms |{bar}"
            )
    wata, eata = stats["WaTA"][0], stats["EaTA"][0]
    p99_reduction = 1.0 - eata.p99 / wata.p99
    p95_reduction = 1.0 - eata.p95 / wata.p95
    lines.append(
        f"  EaTA vs WaTA: std ratio {wata.std / eata.std:.2f}"
        f" (paper 1.52/0.78=1.95), P99 -{p99_reduction * 100:.0f}%"
        f" (paper -31%), P95 -{p95_reduction * 100:.0f}% (paper -24%)"
    )
    write_report("fig13_tail_latency", "\n".join(lines))
    assert eata.std < wata.std
    assert eata.p99 < wata.p99
    assert eata.p95 < wata.p95
