"""Extension: OMeGa on CXL-attached memory (the conclusion's outlook).

Swaps the Optane device model for a CXL Type-3 expander and re-runs the
SpMM experiment: the paper argues OMeGa's optimizations carry over to any
tiered hierarchy; the CXL tier's friendlier scattered-read behaviour
should narrow the gap to DRAM further, while EaTA/WoFP/NaDP still help.
"""

from common import (  # noqa: F401
    dataset,
    dense_operand,
    run_once,
    write_report,
)

from repro.bench import format_table
from repro.core import (
    AllocationScheme,
    MemoryMode,
    OMeGaConfig,
    PlacementScheme,
    SpMMEngine,
)
from repro.memsim.numa import cxl_testbed, paper_testbed


def _run(graph, dense, topology, **overrides):
    base = dict(
        n_threads=30,
        dim=32,
        capacity_scale=graph.scale,
        topology=topology,
    )
    base.update(overrides)
    engine = SpMMEngine(OMeGaConfig(**base))
    return engine.multiply(graph.adjacency_csdb(), dense, compute=False)


def test_ext_cxl_tier(run_once):
    def experiment():
        rows = []
        for name in ("PK", "LJ", "OR"):
            graph = dataset(name)
            dense = dense_operand(graph)
            optane = _run(graph, dense, paper_testbed())
            cxl = _run(graph, dense, cxl_testbed())
            cxl_naive = _run(
                graph,
                dense,
                cxl_testbed(),
                allocation=AllocationScheme.ROUND_ROBIN,
                placement=PlacementScheme.INTERLEAVE,
                prefetcher_enabled=False,
            )
            dram = _run(
                graph, dense, paper_testbed(), memory_mode=MemoryMode.DRAM_ONLY
            )
            rows.append((graph, optane, cxl, cxl_naive, dram))
        return rows

    rows = run_once(experiment)
    table = format_table(
        [
            "Graph",
            "OMeGa/Optane",
            "OMeGa/CXL",
            "naive/CXL",
            "DRAM ideal",
            "CXL gap to DRAM",
            "OMeGa gain on CXL",
        ],
        [
            [
                graph.name,
                f"{optane.sim_seconds * 1e3:.3f} ms",
                f"{cxl.sim_seconds * 1e3:.3f} ms",
                f"{naive.sim_seconds * 1e3:.3f} ms",
                f"{dram.sim_seconds * 1e3:.3f} ms",
                f"{cxl.sim_seconds / dram.sim_seconds:.2f}x",
                f"{naive.sim_seconds / cxl.sim_seconds:.2f}x",
            ]
            for graph, optane, cxl, naive, dram in rows
        ],
        title="Extension — OMeGa with a CXL Type-3 capacity tier",
    )
    write_report("ext_cxl", table)
    for graph, optane, cxl, naive, dram in rows:
        # CXL trades lower link bandwidth for far better scattered
        # behaviour: OMeGa lands in the same band as on Optane (within
        # ~15%), sometimes ahead...
        assert cxl.sim_seconds < 1.15 * optane.sim_seconds
        # ...and its optimizations matter even *more* there, because a
        # naive run leans on the link's scattered path.
        assert naive.sim_seconds > 1.3 * cxl.sim_seconds
        assert cxl.sim_seconds > dram.sim_seconds
