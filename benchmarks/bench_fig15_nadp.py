"""Fig. 15: NaDP's effect on (a) overall time and (b) SpMM time.

Arms: OMeGa (NaDP), OMeGa-w/o-NaDP (OS Interleaved), the OS Local policy
(extra ablation arm), and the OMeGa-DRAM ideal.
"""

from common import (  # noqa: F401
    SPMM_GRAPHS,
    dataset,
    dense_operand,
    engine_for,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_seconds, format_table, project_full_scale
from repro.core import MemoryMode, OMeGaConfig, PlacementScheme
from repro.core.embedding import embedder_for_dataset
from repro.memsim.allocator import CapacityError

OVERALL_GRAPHS = ("PK", "LJ", "OR")  # end-to-end runs on the smaller trio


def _spmm_row(name):
    graph = dataset(name)
    dense = dense_operand(graph)

    def run(**overrides):
        engine = engine_for(graph, **overrides)
        return engine.multiply(
            graph.adjacency_csdb(), dense, compute=False
        ).sim_seconds

    nadp = run()
    interleave = run(placement=PlacementScheme.INTERLEAVE)
    local = run(placement=PlacementScheme.LOCAL)
    try:
        dram = run(memory_mode=MemoryMode.DRAM_ONLY)
    except CapacityError:
        dram = float("nan")
    return graph, nadp, interleave, local, dram


def _overall_row(name):
    graph = dataset(name)

    def run(**overrides):
        embedder = embedder_for_dataset(
            graph, OMeGaConfig(n_threads=30, dim=32), **overrides
        )
        return embedder.embed_dataset(graph).sim_seconds

    return (
        graph,
        run(),
        run(placement=PlacementScheme.INTERLEAVE),
        run(memory_mode=MemoryMode.DRAM_ONLY, streaming_enabled=False),
    )


def test_fig15a_overall(run_once):
    session = telemetry_session(
        "fig15a_nadp_overall", graphs=list(OVERALL_GRAPHS)
    )
    rows = run_once(lambda: [_overall_row(name) for name in OVERALL_GRAPHS])
    table_rows = []
    for graph, nadp, interleave, dram in rows:
        session.event(
            "nadp_overall", graph=graph.name, nadp_s=nadp,
            interleave_s=interleave, dram_s=dram,
        )
        table_rows.append(
            [
                graph.name,
                format_seconds(project_full_scale(nadp, graph.scale)),
                format_seconds(project_full_scale(interleave, graph.scale)),
                format_seconds(project_full_scale(dram, graph.scale)),
                f"{interleave / nadp:.2f}x",
                f"{interleave / dram:.2f}x",
            ]
        )
    table = format_table(
        [
            "Graph",
            "OMeGa",
            "OMeGa-w/o-NaDP",
            "OMeGa-DRAM",
            "NaDP gain",
            "w/o-NaDP vs DRAM",
        ],
        table_rows,
        title=(
            "Fig. 15(a) — NaDP effect on overall time"
            " (paper: 1.95x gain; w/o-NaDP 2.98x slower than DRAM)"
        ),
    )
    save_telemetry(session, "fig15a_nadp_overall")
    write_report("fig15a_nadp_overall", table)
    for graph, nadp, interleave, dram in rows:
        assert interleave > nadp > dram


def test_fig15b_spmm(run_once):
    session = telemetry_session("fig15b_nadp_spmm", graphs=list(SPMM_GRAPHS))
    rows = run_once(lambda: [_spmm_row(name) for name in SPMM_GRAPHS])
    table_rows = []
    for graph, nadp, interleave, local, dram in rows:
        session.event(
            "nadp_spmm", graph=graph.name, nadp_s=nadp,
            interleave_s=interleave, local_s=local, dram_s=dram,
        )
        table_rows.append(
            [
                graph.name,
                format_seconds(project_full_scale(nadp, graph.scale)),
                format_seconds(project_full_scale(interleave, graph.scale)),
                format_seconds(project_full_scale(local, graph.scale)),
                format_seconds(project_full_scale(dram, graph.scale))
                if dram == dram
                else "OOM",
                f"{interleave / nadp:.2f}x",
            ]
        )
    table = format_table(
        ["Graph", "OMeGa", "w/o-NaDP", "OS-Local", "OMeGa-DRAM", "NaDP gain"],
        table_rows,
        title="Fig. 15(b) — NaDP effect on SpMM (paper: 2.42x-3.59x gain)",
    )
    save_telemetry(session, "fig15b_nadp_spmm")
    write_report("fig15b_nadp_spmm", table)
    gains = [interleave / nadp for _, nadp, interleave, _, _ in rows]
    for (graph, nadp, interleave, local, dram), gain in zip(rows, gains):
        assert 1.15 < gain < 6.0
        assert local > interleave
    # The skewed graphs reach the paper's 2.4x+ band.
    assert max(gains) > 2.0
