"""Table II: one SpMM under RR vs WaTA vs EaTA on every graph."""

from common import (  # noqa: F401
    ALL_GRAPHS,
    dataset,
    dense_operand,
    engine_for,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_seconds, format_table, project_full_scale
from repro.core import AllocationScheme


def _row(name, session):
    graph = dataset(name)
    dense = dense_operand(graph)
    times = {}
    for scheme in AllocationScheme:
        engine = engine_for(graph, session=session, allocation=scheme)
        result = engine.multiply(graph.adjacency_csdb(), dense, compute=False)
        times[scheme] = result.sim_seconds
    session.event(
        "allocation_row", graph=name,
        **{scheme.value: t for scheme, t in times.items()},
    )
    projected = {
        s: project_full_scale(t, graph.scale) for s, t in times.items()
    }
    return [
        name,
        format_seconds(projected[AllocationScheme.ROUND_ROBIN]),
        format_seconds(projected[AllocationScheme.WORKLOAD_BALANCED]),
        format_seconds(projected[AllocationScheme.ENTROPY_AWARE]),
        f"{times[AllocationScheme.ROUND_ROBIN] / times[AllocationScheme.ENTROPY_AWARE]:.2f}x",
        f"{times[AllocationScheme.WORKLOAD_BALANCED] / times[AllocationScheme.ENTROPY_AWARE]:.2f}x",
    ]


def test_table2_thread_allocation(run_once):
    session = telemetry_session("table2_allocation", graphs=list(ALL_GRAPHS))
    rows = run_once(lambda: [_row(name, session) for name in ALL_GRAPHS])
    save_telemetry(session, "table2_allocation")
    table = format_table(
        ["Graph", "RR", "WaTA", "EaTA", "RR/EaTA", "WaTA/EaTA"],
        rows,
        title=(
            "Table II — SpMM running time per allocation scheme"
            " (simulated, projected to full scale)"
        ),
    )
    write_report("table2_allocation", table)
    # EaTA decisively beats RR everywhere and matches-or-beats WaTA
    # (the paper's own TW gap is only 1.04x; dense graphs are near-ties).
    for row in rows:
        assert float(row[4][:-1]) > 1.5
        assert float(row[5][:-1]) >= 0.95
