"""Tail latency under chaos: resilience controls on vs off.

Replay the same synthetic request trace against the same fault plan
(backend stalls, request bursts, PM degradation) through two server
configurations:

- **resilient** — bounded admission queue with shedding, circuit
  breaker around the compute backend, deadline-aware degradation
  ladder;
- **naive** — same backend and ladder, but unbounded queue, no breaker
  and no deadline-aware rung selection: every stalled call burns its
  full stall budget, and queued work is never dropped.

Under faults the resilient configuration must hold a strictly lower
p99 completion latency (over everything that consumed service: served
plus deadline-exceeded) and serve strictly more requests within their
deadlines.  The comparison is exact — same trace seed, same fault
plan, same simulated clock semantics.

Both arms are additionally scored against the declarative SLO spec in
``benchmarks/serve_tail.slo.json`` (the same spec ``repro serve-sim
--slo`` takes): the resilient arm must meet every objective while the
naive arm blows the interactive p99 objective — the observatory's
burn-rate view of the same Fig. 13-style tail separation.

Each arm also runs with a live telemetry stream
(``benchmarks/results/serve_tail.<arm>.live.jsonl``), so every request
leaves a forensic causal tree behind.  The bench then plays auditor:
for the slowest 1% of completed requests it reconstructs the full tree
from the stream (the ``repro why`` path) and asserts the critical-path
invariant — per-request blame sums exactly to the simulated latency —
across *all* requests, with the fault plan active.
"""

import math
from pathlib import Path

from common import (  # noqa: F401
    RESULTS_DIR,
    dataset,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_seconds, format_table
from repro.core import OMeGaConfig, OMeGaEmbedder
from repro.faults import FaultInjector, FaultPlan
from repro.memsim.clock import VirtualClock
from repro.obs import MetricsRegistry
from repro.obs.forensics import SUM_REL_TOL, fold_stream
from repro.obs.live import TelemetryStream, load_records
from repro.obs.observatory import SLOSpec, evaluate_slo
from repro.obs.observatory.slo import render_slo
from repro.serve import (
    EmbeddingBackend,
    EmbeddingServer,
    RequestTrace,
    ServePolicy,
)

DIM = 16
N_THREADS = 8
N_REQUESTS = 800
FAULT_SEED = 7
TRACE_SEED = 3
#: Mean node count of an interactive request (uniform 1..16).
MEAN_INTERACTIVE_NODES = 8.5
#: Statuses that consumed service and have a completion latency.
COMPLETED = ("served", "deadline_exceeded")
#: Declarative objectives both arms are scored against.
SLO_SPEC_PATH = Path(__file__).parent / "serve_tail.slo.json"


def _run_arm(graph, label: str, resilient: bool):
    metrics = MetricsRegistry()
    embedder = OMeGaEmbedder(
        OMeGaConfig(
            n_threads=N_THREADS, dim=DIM, capacity_scale=graph.scale
        ),
        metrics=metrics,
    )
    plan = FaultPlan.random_serve(seed=FAULT_SEED, n_events=6)
    injector = FaultInjector(plan, metrics)
    backend = EmbeddingBackend(
        embedder, graph.edges, graph.n_nodes, faults=injector, metrics=metrics
    )
    backend.warm_up()
    per_node = backend.compute_cost(1)
    trace = RequestTrace.synthesize(
        seed=TRACE_SEED, n_requests=N_REQUESTS, per_node_cost_s=per_node
    )
    policy = ServePolicy.calibrated(
        per_node * MEAN_INTERACTIVE_NODES,
        breaker_enabled=resilient,
        shedding_enabled=resilient,
        deadline_aware=resilient,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    stream_path = RESULTS_DIR / f"serve_tail.{label}.live.jsonl"
    stream = TelemetryStream(stream_path)
    server = EmbeddingServer(
        backend, policy, clock=VirtualClock(), metrics=metrics,
        stream=stream,
    )
    try:
        report = server.run_trace(trace)
    finally:
        stream.close()
    assert report.balanced, "accounting invariant broken"
    assert metrics.value("serve.unhandled_exceptions") == 0
    _verify_forensics(stream_path, report)
    return report, server


def _verify_forensics(stream_path, report):
    """The ``repro why`` acceptance check, inline.

    Every request in the stream must fold into a tree whose blame sums
    to its simulated latency, and the slowest 1% must come back as
    *full* causal trees (root with children), reconstructable purely
    from the stream.
    """
    forensics = fold_stream(load_records(stream_path), worst_k=32)
    assert forensics.n_requests == report.submitted
    violations = forensics.verify()
    assert not violations, f"blame-sum invariant violated: {violations[:3]}"
    completed = sorted(
        (r for r in report.responses if r.latency_s is not None),
        key=lambda r: r.latency_s,
        reverse=True,
    )
    slowest = completed[: max(1, len(completed) // 100)]
    for response in slowest:
        tree = forensics.find(response.trace_id)
        assert tree is not None, f"no tree for p99 request {response.trace_id}"
        assert tree.root.children, "tail tree has no causal nodes"
        assert math.isclose(
            sum(tree.blame.values()),
            response.latency_s,
            rel_tol=SUM_REL_TOL,
            abs_tol=1e-15,
        )


def _experiment(graph):
    session = telemetry_session("serve_tail", graph=graph.name)
    spec = SLOSpec.load(SLO_SPEC_PATH)
    arms = {}
    for label, resilient in (("resilient", True), ("naive", False)):
        report, server = _run_arm(graph, label, resilient)
        slo = evaluate_slo(server.metrics.to_records(), spec)
        arms[label] = (report, server, slo)
        session.event(
            "serve_arm",
            arm=label,
            breaker_trips=server.breaker.trips,
            slo_ok=slo.ok,
            slo_burn_rates={
                r.objective.name: r.burn_rate for r in slo.results
            },
            **report.summary(),
        )
    save_telemetry(session, "serve_tail")
    return arms


def test_serve_tail_latency(run_once):
    graph = dataset("PK")
    arms = run_once(lambda: _experiment(graph))

    rows = []
    for label, (report, server, slo) in arms.items():
        rows.append(
            [
                label,
                str(report.submitted),
                str(report.served),
                str(report.shed),
                str(report.deadline_exceeded),
                str(server.breaker.trips),
                format_seconds(report.latency_percentile(50, COMPLETED)),
                format_seconds(report.latency_percentile(99, COMPLETED)),
                "PASS" if slo.ok else "FAIL",
            ]
        )
    table = format_table(
        [
            "arm", "submitted", "served", "shed", "deadline miss",
            "breaker trips", "p50", "p99", "SLO",
        ],
        rows,
        title=(
            f"Serving tail latency under chaos (PK, {N_REQUESTS} requests,"
            f" fault seed {FAULT_SEED})"
        ),
    )
    slo_sections = "\n\n".join(
        f"[{label}]\n{render_slo(slo)}"
        for label, (_, _, slo) in arms.items()
    )
    write_report("serve_tail", f"{table}\n\n{slo_sections}")

    resilient, r_server, r_slo = arms["resilient"]
    naive, n_server, n_slo = arms["naive"]
    # Both arms replay the identical trace and fault plan.
    assert resilient.submitted == naive.submitted
    # The breaker must actually trip under this plan.
    assert r_server.breaker.trips > 0
    # Headline claim: shedding + breaker + deadline-aware degradation
    # cut the completion-latency tail and miss fewer deadlines.
    assert resilient.latency_percentile(99, COMPLETED) < (
        naive.latency_percentile(99, COMPLETED)
    )
    assert resilient.served > naive.served
    assert resilient.deadline_exceeded < naive.deadline_exceeded
    # The SLO view of the same separation: the resilient arm meets every
    # declarative objective, the naive arm blows the p99 objective.
    assert r_slo.ok
    assert not n_slo.ok
    assert "interactive-p99" in {
        r.objective.name for r in n_slo.violations
    }
