"""Fig. 9: PM bandwidth characterization (the simulated FIO/MLC sweep)."""

from common import (  # noqa: F401
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.memsim import pm_spec, probe_bandwidth, probe_latency
from repro.memsim.probe import peak_bandwidth_summary


def test_fig9_pm_bandwidth_sweep(run_once):
    thread_counts = (1, 2, 4, 8, 12, 16, 20, 24, 28)
    session = telemetry_session("fig9_bandwidth", threads=list(thread_counts))
    results = run_once(lambda: probe_bandwidth(pm_spec(), thread_counts))
    by_curve: dict = {}
    for r in results:
        key = f"{r.op.value}-{r.pattern.value}-{r.locality.value}"
        by_curve.setdefault(key, []).append(r.bandwidth_gib_s)
        session.event(
            "probe_point", curve=key, threads=r.threads,
            bandwidth_gib_s=r.bandwidth_gib_s,
        )
    lines = ["Fig. 9 — PM bandwidth (GiB/s) vs #threads"]
    header = "curve".ljust(18) + "".join(f"{t:>8d}" for t in thread_counts)
    lines.append(header)
    for key, curve in by_curve.items():
        lines.append(key.ljust(18) + "".join(f"{b:8.2f}" for b in curve))
    summary = peak_bandwidth_summary(pm_spec())
    lines.append("")
    lines.append("Headline ratios (paper: 2.41x, 2.45x, 3.23x, 4.99x):")
    for name, value in summary.items():
        lines.append(f"  {name} = {value:.2f}")
    latency = probe_latency(pm_spec())
    lines.append("MLC latencies (ns): " + ", ".join(
        f"{op.value}/{loc.value}={ns:.0f}" for (op, loc), ns in latency.items()
    ))
    for name, value in summary.items():
        session.event("headline_ratio", ratio=name, value=value)
    save_telemetry(session, "fig9_bandwidth")
    write_report("fig9_bandwidth", "\n".join(lines))
    assert len(by_curve) == 8
    # Every curve saturates: the last increment is below 10%.
    for curve in by_curve.values():
        assert curve[-1] / curve[-2] < 1.1
