"""Ablation: WoFP's hybrid prefetcher vs frequency-only vs degree-only.

The paper motivates the hybrid selection rule (frequency for dense
workloads, in-degree for the sparse majority).  Forcing eta to the
extremes yields the two pure policies; the hybrid should match the
better of the two on hit rate while paying less maintenance than
frequency-only.
"""

from common import (  # noqa: F401
    dataset,
    dense_operand,
    engine_for,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_table

ARMS = {
    "hybrid (paper)": dict(eta=0.01),
    "frequency-only": dict(eta=1e-9),
    "degree-only": dict(eta=1e9),
}


def _measure(name, session):
    graph = dataset(name)
    dense = dense_operand(graph)
    rows = {}
    for arm, overrides in ARMS.items():
        result = engine_for(graph, session=session, **overrides).multiply(
            graph.adjacency_csdb(), dense, compute=False
        )
        maintenance = sum(p.maintenance_ops for p in result.prefetch_plans)
        rows[arm] = (
            result.sim_seconds,
            result.mean_hit_fraction,
            maintenance,
        )
        session.event(
            "wofp_arm", graph=name, arm=arm, sim_seconds=result.sim_seconds,
            hit_fraction=result.mean_hit_fraction, maintenance_ops=maintenance,
        )
    return graph, rows


def test_ablation_wofp_hybrid(run_once):
    session = telemetry_session(
        "ablation_wofp_hybrid", graphs=["PK", "LJ", "OR"], arms=list(ARMS)
    )
    results = run_once(
        lambda: [_measure(n, session) for n in ("PK", "LJ", "OR")]
    )
    save_telemetry(session, "ablation_wofp_hybrid")
    table_rows = []
    for graph, rows in results:
        for arm, (seconds, hit, maintenance) in rows.items():
            table_rows.append(
                [
                    graph.name,
                    arm,
                    f"{seconds * 1e3:.3f} ms",
                    f"{hit * 100:.1f}%",
                    f"{maintenance / 1e3:.0f}k ops",
                ]
            )
    table = format_table(
        ["Graph", "prefetcher", "SpMM time", "hit rate", "maintenance"],
        table_rows,
        title="Ablation — WoFP hybrid vs pure policies",
    )
    write_report("ablation_wofp_hybrid", table)
    for graph, rows in results:
        hybrid_t, hybrid_hit, hybrid_maint = rows["hybrid (paper)"]
        freq_t, freq_hit, freq_maint = rows["frequency-only"]
        deg_t, deg_hit, deg_maint = rows["degree-only"]
        # Hybrid maintenance never exceeds frequency-only's.
        assert hybrid_maint <= freq_maint
        # Hybrid hit rate is close to the best pure policy.
        assert hybrid_hit >= 0.9 * max(freq_hit, deg_hit)
        # And its end-to-end time is within a few percent of the best arm.
        assert hybrid_t <= 1.1 * min(freq_t, deg_t)
