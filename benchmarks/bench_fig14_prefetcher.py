"""Fig. 14: total SpMM time with and without WoFP, on five graphs."""

from common import (  # noqa: F401
    SPMM_GRAPHS,
    dataset,
    dense_operand,
    engine_for,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_seconds, format_table, project_full_scale


def _pair(name, session):
    graph = dataset(name)
    dense = dense_operand(graph)
    with_wofp = engine_for(graph, session=session).multiply(
        graph.adjacency_csdb(), dense, compute=False
    )
    without = engine_for(
        graph, session=session, prefetcher_enabled=False
    ).multiply(graph.adjacency_csdb(), dense, compute=False)
    return graph, with_wofp, without


def test_fig14_wofp_effect(run_once):
    session = telemetry_session("fig14_prefetcher", graphs=list(SPMM_GRAPHS))
    rows = run_once(lambda: [_pair(name, session) for name in SPMM_GRAPHS])
    table_rows = []
    improvements = []
    for graph, with_wofp, without in rows:
        improvement = 1.0 - with_wofp.sim_seconds / without.sim_seconds
        improvements.append(improvement)
        session.event(
            "wofp_pair", graph=graph.name,
            with_wofp_s=with_wofp.sim_seconds,
            without_s=without.sim_seconds,
            improvement=improvement,
            hit_fraction=with_wofp.mean_hit_fraction,
        )
        overhead = (
            with_wofp.trace.seconds("prefetch")
            + with_wofp.trace.seconds("allocation")
        ) / with_wofp.trace.total_seconds
        table_rows.append(
            [
                graph.name,
                format_seconds(
                    project_full_scale(with_wofp.sim_seconds, graph.scale)
                ),
                format_seconds(
                    project_full_scale(without.sim_seconds, graph.scale)
                ),
                f"{improvement * 100:.1f}%",
                f"{with_wofp.mean_hit_fraction * 100:.0f}%",
                f"{overhead * 100:.2f}%",
            ]
        )
    mean_improvement = sum(improvements) / len(improvements)
    table = format_table(
        ["Graph", "OMeGa", "OMeGa-w/o-WoFP", "gain", "hit rate", "overhead"],
        table_rows,
        title=(
            "Fig. 14 — SpMM time with/without WoFP"
            f" (mean gain {mean_improvement * 100:.1f}%; paper: 37.28%)"
        ),
    )
    save_telemetry(session, "fig14_prefetcher")
    write_report("fig14_prefetcher", table)
    assert all(i > 0.1 for i in improvements)
    assert 0.2 < mean_improvement < 0.7
