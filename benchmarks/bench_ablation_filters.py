"""Ablation: spectral-filter variants in the propagation stage.

ProNE's Gaussian band-pass is compared against the heat-kernel low-pass
and PPR propagation on both axes the paper cares about: simulated cost
(SpMM count differs per filter) and downstream quality (planted-community
classification).
"""

import numpy as np
from common import (  # noqa: F401
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_table
from repro.core import OMeGaConfig, OMeGaEmbedder
from repro.eval import node_classification_accuracy
from repro.graphs import planted_partition_edges
from repro.prone.model import ProNEParams

FILTERS = ("gaussian", "heat", "ppr")


def test_ablation_spectral_filters(run_once):
    def experiment():
        edges, labels = planted_partition_edges(
            1500, 22_000, n_communities=5, p_in=0.85, seed=11
        )
        rows = []
        for name in FILTERS:
            embedder = OMeGaEmbedder(
                OMeGaConfig(n_threads=16, dim=32),
                params=ProNEParams(dim=32, order=8, spectral_filter=name),
            )
            result = embedder.embed_edges(edges, 1500)
            accuracy = node_classification_accuracy(
                result.embedding, labels, seed=0
            )
            rows.append((name, result.sim_seconds, result.n_spmm, accuracy))
        return rows

    rows = run_once(experiment)
    session = telemetry_session("ablation_filters", filters=list(FILTERS))
    for name, seconds, n_spmm, accuracy in rows:
        session.event(
            "filter_row", filter=name, sim_seconds=seconds,
            n_spmm=n_spmm, accuracy=accuracy,
        )
    save_telemetry(session, "ablation_filters")
    table = format_table(
        ["filter", "sim time", "SpMM ops", "classification accuracy"],
        [
            [name, f"{seconds * 1e3:.2f} ms", n_spmm, f"{accuracy:.3f}"]
            for name, seconds, n_spmm, accuracy in rows
        ],
        title="Ablation — spectral propagation filters",
    )
    write_report("ablation_filters", table)
    accuracies = {name: accuracy for name, _, _, accuracy in rows}
    # Every filter recovers the planted signal far above the 20% chance.
    assert all(acc > 0.5 for acc in accuracies.values())
    # The Gaussian band-pass (the paper's choice) is competitive with the
    # best alternative.
    assert accuracies["gaussian"] >= max(accuracies.values()) - 0.1


def test_ablation_partitioners(run_once):
    """Partitioner quality table: the substrate under the DistDGL model."""
    from repro.graphs import (
        edge_cut_fraction,
        greedy_community_partition,
        hash_partition,
        partition_load_balance,
        range_partition,
    )

    def experiment():
        edges, _ = planted_partition_edges(
            1200, 16_000, n_communities=8, p_in=0.8, seed=5
        )
        n_parts = 4
        arms = {
            "hash (DistDGL)": hash_partition(1200, n_parts, seed=0),
            "range": range_partition(1200, n_parts),
            "greedy LDG": greedy_community_partition(
                edges, 1200, n_parts, seed=0
            ),
        }
        return [
            (
                name,
                edge_cut_fraction(edges, assignment),
                partition_load_balance(assignment),
            )
            for name, assignment in arms.items()
        ]

    rows = run_once(experiment)
    session = telemetry_session("ablation_partitioners", n_parts=4)
    for name, cut, balance in rows:
        session.event(
            "partitioner_row", partitioner=name, edge_cut=cut,
            load_balance=balance,
        )
    save_telemetry(session, "ablation_partitioners")
    table = format_table(
        ["partitioner", "edge cut", "load balance"],
        [
            [name, f"{cut * 100:.1f}%", f"{balance:.2f}"]
            for name, cut, balance in rows
        ],
        title=(
            "Ablation — partitioners (edge cut drives the distributed"
            " systems' network traffic)"
        ),
    )
    write_report("ablation_partitioners", table)
    cuts = {name: cut for name, cut, _ in rows}
    assert cuts["greedy LDG"] < cuts["hash (DistDGL)"]
