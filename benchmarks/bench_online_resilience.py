"""Online-resilience chaos: staleness, promotion vs WAL, storms.

Four experiments against the sharded store at the manager level (so
every fault coordinate is an exact lookup sequence number):

- **staleness** — live write traffic with the background checkpointer
  on: the worst ``table_version - checkpoint_version`` any lookup
  observes must stay at or below ``ShardPolicy.staleness_bound``, and
  the ``staleness_bound`` SLO kind must pass over the exported
  ``shard.staleness_max`` gauge.
- **failover** — the same seeded primary kill through two fleets: with
  a warm replica the supervisor *promotes* (zero WAL replay, zero lost
  versions); without one it *restarts* from the WAL checkpoint.  The
  promotion's simulated downtime must be strictly below the replay's —
  the table is sized so one shard's checkpoint is ~5 MB, where a PM
  sequential read genuinely dominates the coordination penalty.
- **storm** — checkpoint corruption (corrupt + torn) followed by a kill
  of the same shard while skewed traffic drives an online split:
  recovery walks back to the newest *verified* checkpoint (quarantining
  the damaged one), every row served is provably *some* historical
  version of the table (never garbage), and availability stays >= 99%
  through the reshard + corruption storm.
- **chaos matrix** — ``RESILIENCE_SEED`` / ``RESILIENCE_SCENARIO``
  select a :meth:`~repro.faults.FaultPlan.random_resilience` plan (the
  CI matrix axes: promotion / reshard / corruption); every scenario
  must hold availability, serve no garbage, and converge bit-identically
  to the fault-free table after catch-up.

The run streams live telemetry to
``benchmarks/results/online_resilience.live.jsonl`` — the file the CI
``resilience-chaos`` matrix uploads (with the failing seed) on failure.
"""

import os

import numpy as np
from common import (  # noqa: F401
    RESULTS_DIR,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_table
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.obs import MetricsRegistry
from repro.obs.observatory import append_trajectory_point
from repro.obs.observatory.manifest import git_sha
from repro.obs.observatory.perfgate import DEFAULT_TRAJECTORY
from repro.obs.observatory.slo import SLOObjective, SLOSpec, evaluate_slo
from repro.shard import (
    EmbeddingShardManager,
    PartialResultError,
    ShardPolicy,
    ShardSupervisor,
    SupervisorPolicy,
)

N_SHARDS = 4
SEED = 7
AVAILABILITY_TARGET = 0.99

#: Small fleet for the staleness / storm / chaos arms.
N_NODES = 240
DIM = 8
CHECKPOINT_INTERVAL = 6
STALENESS_BOUND = 3

#: Failover arm: one shard's rows span ~5 MB, so the WAL restart's PM
#: sequential replay costs more simulated time than the promotion's
#: coordination penalty — the regime the comparison is honest in.
FAILOVER_NODES = 80_000
FAILOVER_DIM = 32
CRASHED_SHARD = 2
CRASH_AT_LOOKUP = 9

#: Storm coordinates: two media faults damage shard 1's newest WAL
#: record *after* the periodic checkpoint at lookup 6, then the kill at
#: lookup 9 forces a verified walk-back past the quarantined record.
DAMAGED_SHARD = 1

#: Per-scenario fleet shape for the seeded chaos matrix.
SCENARIO_CONFIG = {
    "promotion": dict(
        replicas=1, interval=6, bound=4, imbalance=0.0, skew=None,
        checkpoint_every=0,
    ),
    "reshard": dict(
        replicas=1, interval=6, bound=4, imbalance=1.3, skew=0,
        checkpoint_every=0,
    ),
    "corruption": dict(
        replicas=0, interval=0, bound=0, imbalance=0.0, skew=None,
        checkpoint_every=3,
    ),
}


def _manager(n_nodes, dim, policy, plan=None, metrics=None, stream=None):
    metrics = metrics if metrics is not None else MetricsRegistry()
    table = np.random.default_rng(SEED).standard_normal((n_nodes, dim))
    faults = FaultInjector(plan, metrics) if plan is not None else None
    return EmbeddingShardManager(
        table, policy=policy, faults=faults, metrics=metrics, stream=stream
    )


def _verify_rows(rows, ids, history):
    """Every returned row must be *some* historical version of its node.

    Stale reads are allowed (bounded staleness is the contract); rows
    matching no snapshot would mean corruption leaked into a result.
    """
    stack = np.stack([snapshot[ids] for snapshot in history])
    match = np.all(stack == rows[None], axis=2).any(axis=0)
    assert bool(match.all()), (
        f"{int((~match).sum())} rows match no historical table version"
    )


def _drive(
    manager,
    supervisor,
    n_lookups,
    *,
    rng,
    batch=16,
    skew_shard=None,
    checkpoint_every=0,
    verify=True,
):
    """Live traffic: one table update before every scatter-gather.

    ``skew_shard`` concentrates 80% of lookups on one shard's range
    (the load imbalance that triggers an elastic reshard);
    ``checkpoint_every`` cuts periodic durable checkpoints (the record
    media faults damage); ``verify`` checks every served row against
    the full version history — the never-garbage property.
    """
    n_nodes = len(manager.table)
    dim = manager.table.shape[1]
    history = [manager.table.copy()] if verify else None
    served = failed = stale_rows = 0
    for i in range(n_lookups):
        ids = rng.integers(0, n_nodes, size=4)
        manager.apply_update(ids, rng.standard_normal((len(ids), dim)))
        if verify:
            history.append(manager.table.copy())
        if checkpoint_every and i % checkpoint_every == 0:
            manager.checkpoint_all()
        if (
            skew_shard is not None
            and hasattr(manager.routing, "ranges")
            and rng.random() < 0.8
        ):
            shard = min(skew_shard, manager.routing.n_shards - 1)
            lo, hi = manager.routing.ranges[shard]
            lookup_ids = rng.integers(lo, hi, size=batch)
        else:
            lookup_ids = rng.integers(0, n_nodes, size=batch)
        try:
            result = manager.lookup(lookup_ids)
        except PartialResultError:
            failed += 1
        else:
            served += 1
            stale_rows += result.stale_rows
            if verify:
                _verify_rows(result.rows, lookup_ids, history)
        if supervisor is not None:
            supervisor.check()
    return {
        "served": served,
        "failed": failed,
        "availability": served / max(served + failed, 1),
        "stale_rows": stale_rows,
    }


def _converged(manager):
    """Catch every shard up; a full gather must then equal the table."""
    for host in list(manager.hosts):
        manager.catch_up(host.shard_id)
    result = manager.lookup(np.arange(len(manager.table)))
    return bool(
        np.array_equal(result.rows, manager.table) and result.stale_rows == 0
    )


def _staleness_arm(stream=None):
    metrics = MetricsRegistry()
    policy = ShardPolicy(
        n_shards=N_SHARDS,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        staleness_bound=STALENESS_BOUND,
    )
    manager = _manager(N_NODES, DIM, policy, metrics=metrics, stream=stream)
    with manager:
        stats = _drive(manager, None, 48, rng=np.random.default_rng(11))
        refresher = manager.refresher
        spec = SLOSpec(
            name="online-resilience",
            objectives=(
                SLOObjective(
                    name="bounded-staleness",
                    kind="staleness_bound",
                    target=float(STALENESS_BOUND),
                ),
            ),
        )
        slo = evaluate_slo(metrics.to_records(), spec)
        converged = _converged(manager)
    return {
        **stats,
        "bg_checkpoints": refresher.bg_checkpoints,
        "staleness_max": refresher.max_observed_staleness,
        "refresh_sim_s": refresher.sim_refresh_seconds,
        "slo_ok": slo.ok,
        "converged": converged,
    }


def _failover_arm(n_replicas, stream=None):
    metrics = MetricsRegistry()
    plan = FaultPlan(
        events=(
            FaultEvent(
                "shard_crash",
                f"shard.{CRASHED_SHARD}",
                count=CRASH_AT_LOOKUP,
            ),
        ),
        seed=SEED,
    )
    policy = ShardPolicy(n_shards=N_SHARDS, n_replicas=n_replicas)
    manager = _manager(
        FAILOVER_NODES,
        FAILOVER_DIM,
        policy,
        plan=plan,
        metrics=metrics,
        stream=stream,
    )
    with manager:
        supervisor = ShardSupervisor(manager, metrics=metrics)
        supervisor.wait_heartbeats()
        stats = _drive(
            manager,
            supervisor,
            16,
            rng=np.random.default_rng(13),
            verify=False,
        )
        repairs = [
            i
            for i in supervisor.incidents
            if i.action in ("promote", "restart")
        ]
        assert repairs, "the injected kill was never repaired"
        restarts = sum(host.restarts for host in manager.hosts)
        promotions = sum(host.promotions for host in manager.hosts)
        converged = _converged(manager)
    return {
        **stats,
        "restarts": restarts,
        "promotions": promotions,
        "recovery_s": max(i.recovery_s for i in repairs),
        "lost_versions": max(i.lost_versions for i in repairs),
        "converged": converged,
    }


def _storm_arm(stream=None):
    metrics = MetricsRegistry()
    plan = FaultPlan(
        events=(
            FaultEvent(
                "checkpoint_corrupt", f"shard.{DAMAGED_SHARD}", count=6
            ),
            FaultEvent(
                "checkpoint_torn", f"shard.{DAMAGED_SHARD}", count=7
            ),
            FaultEvent("shard_crash", f"shard.{DAMAGED_SHARD}", count=9),
        ),
        seed=SEED,
    )
    policy = ShardPolicy(n_shards=N_SHARDS)
    manager = _manager(
        N_NODES, DIM, policy, plan=plan, metrics=metrics, stream=stream
    )
    with manager:
        supervisor = ShardSupervisor(
            manager,
            SupervisorPolicy(reshard_imbalance=1.35, reshard_min_lookups=12),
            metrics=metrics,
        )
        supervisor.wait_heartbeats()
        stats = _drive(
            manager,
            supervisor,
            40,
            rng=np.random.default_rng(17),
            skew_shard=0,
            checkpoint_every=5,
        )
        restart_lost = [
            i.lost_versions
            for i in supervisor.incidents
            if i.action == "restart"
        ]
        result = {
            **stats,
            "quarantined": sum(host.quarantined for host in manager.hosts),
            "restarts": sum(host.restarts for host in manager.hosts),
            "abandoned": sum(1 for host in manager.hosts if host.abandoned),
            "lost_versions": max(restart_lost, default=0),
            "reshard_epoch": manager.reshard_epoch,
            "n_shards_final": manager.routing.n_shards,
            "resharded_ranges": int(
                metrics.value("shard.resharded_ranges")
            ),
            "converged": _converged(manager),
        }
    return result


def _chaos_arm(seed, scenario, stream=None):
    cfg = SCENARIO_CONFIG[scenario]
    metrics = MetricsRegistry()
    plan = FaultPlan.random_resilience(
        seed, scenario, n_shards=N_SHARDS, max_lookup=24
    )
    policy = ShardPolicy(
        n_shards=N_SHARDS,
        n_replicas=cfg["replicas"],
        checkpoint_interval=cfg["interval"],
        staleness_bound=cfg["bound"],
    )
    manager = _manager(
        N_NODES, DIM, policy, plan=plan, metrics=metrics, stream=stream
    )
    with manager:
        supervisor = ShardSupervisor(
            manager,
            SupervisorPolicy(
                reshard_imbalance=cfg["imbalance"], reshard_min_lookups=12
            ),
            metrics=metrics,
        )
        supervisor.wait_heartbeats()
        stats = _drive(
            manager,
            supervisor,
            32,
            rng=np.random.default_rng(seed),
            skew_shard=cfg["skew"],
            checkpoint_every=cfg["checkpoint_every"],
        )
        result = {
            **stats,
            "seed": seed,
            "scenario": scenario,
            "plan_events": len(plan.events),
            "promotions": sum(host.promotions for host in manager.hosts),
            "restarts": sum(host.restarts for host in manager.hosts),
            "quarantined": sum(host.quarantined for host in manager.hosts),
            "abandoned": sum(1 for host in manager.hosts if host.abandoned),
            "reshard_epoch": manager.reshard_epoch,
            "converged": _converged(manager),
        }
    return result


def _experiment():
    seed = int(os.environ.get("RESILIENCE_SEED", "3"))
    scenario = os.environ.get("RESILIENCE_SCENARIO", "promotion")
    session = telemetry_session(
        "online_resilience", seed=seed, scenario=scenario
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    session.stream_to(RESULTS_DIR / "online_resilience.live.jsonl")
    stream = session.stream

    results = {
        "staleness": _staleness_arm(stream=stream),
        "promotion": _failover_arm(1, stream=stream),
        "wal": _failover_arm(0, stream=stream),
        "storm": _storm_arm(stream=stream),
        "chaos": _chaos_arm(seed, scenario, stream=stream),
    }
    for arm, payload in results.items():
        session.event("resilience_arm", arm=arm, **payload)
    session.close_stream()
    save_telemetry(session, "online_resilience")
    return results


def test_online_resilience(run_once):
    results = run_once(_experiment)
    stale = results["staleness"]
    promo = results["promotion"]
    wal = results["wal"]
    storm = results["storm"]
    chaos = results["chaos"]

    def row(label, arm):
        return [
            label,
            f"{arm['availability'] * 100:.1f}%",
            str(arm["stale_rows"]),
            str(arm.get("promotions", 0)),
            str(arm.get("restarts", 0)),
            str(arm.get("quarantined", 0)),
            (
                f"{arm['recovery_s'] * 1e3:.3f} ms"
                if "recovery_s" in arm
                else "-"
            ),
            str(arm["converged"]),
        ]

    table = format_table(
        [
            "arm", "availability", "stale rows", "promotions", "restarts",
            "quarantined", "recovery", "converged",
        ],
        [
            row("staleness", stale),
            row("promotion", promo),
            row("wal-replay", wal),
            row("storm", storm),
            row(f"chaos:{chaos['scenario']}@{chaos['seed']}", chaos),
        ],
        title=(
            f"Online resilience — {N_SHARDS} shards; staleness bound"
            f" {STALENESS_BOUND}, kill at lookup {CRASH_AT_LOOKUP},"
            f" corrupt+torn+kill storm, seeded chaos matrix"
        ),
    )
    write_report("online_resilience", table)

    append_trajectory_point(
        DEFAULT_TRAJECTORY,
        {
            "suite": "bench_online_resilience",
            "git_sha": git_sha(),
            "n_shards": N_SHARDS,
            "points": [
                {
                    "arm": label,
                    "availability": arm["availability"],
                    "stale_rows": arm["stale_rows"],
                    "promotions": arm.get("promotions", 0),
                    "restarts": arm.get("restarts", 0),
                    "recovery_s": arm.get("recovery_s", 0.0),
                }
                for label, arm in results.items()
            ],
        },
    )

    # Staleness: the background checkpointer bounds version lag under
    # live writes, and the SLO kind agrees.
    assert stale["failed"] == 0
    assert stale["bg_checkpoints"] > 0, "background refresh never ran"
    assert stale["staleness_max"] <= STALENESS_BOUND, (
        f"observed staleness {stale['staleness_max']}"
        f" beyond bound {STALENESS_BOUND}"
    )
    assert stale["slo_ok"], "staleness_bound SLO violated"
    assert stale["converged"]

    # Failover: promotion repairs with zero WAL replay and zero lost
    # versions, and its simulated downtime is strictly below the
    # WAL-replay arm's.
    assert promo["promotions"] >= 1 and promo["restarts"] == 0, (
        "replica arm fell back to WAL replay"
    )
    assert promo["lost_versions"] == 0
    assert wal["restarts"] >= 1 and wal["lost_versions"] > 0, (
        "WAL arm never replayed a checkpoint"
    )
    assert promo["recovery_s"] < wal["recovery_s"], (
        f"promotion downtime {promo['recovery_s']:.3e}s not below"
        f" WAL replay {wal['recovery_s']:.3e}s"
    )
    assert promo["converged"] and wal["converged"]

    # Storm: corruption never produces wrong rows (every served row
    # matched a historical version inside _drive), recovery walked back
    # past the quarantined record, the online split landed, and
    # availability held.
    assert storm["availability"] >= AVAILABILITY_TARGET, (
        f"storm availability {storm['availability']:.3f}"
        f" below {AVAILABILITY_TARGET}"
    )
    assert storm["quarantined"] >= 1, "no damaged checkpoint quarantined"
    assert storm["restarts"] >= 1 and storm["lost_versions"] > 0
    assert storm["abandoned"] == 0
    assert storm["stale_rows"] > 0, "walk-back never served stale rows"
    assert storm["reshard_epoch"] >= 1, "the online split never finished"
    assert storm["n_shards_final"] > N_SHARDS
    assert storm["resharded_ranges"] >= 2
    assert storm["converged"]

    # Chaos matrix: whatever the seeded scenario injected, availability
    # held, nothing was abandoned, and the fleet converged bitwise.
    assert chaos["availability"] >= AVAILABILITY_TARGET, (
        f"chaos {chaos['scenario']}@{chaos['seed']} availability"
        f" {chaos['availability']:.3f} below {AVAILABILITY_TARGET}"
    )
    assert chaos["abandoned"] == 0
    assert chaos["converged"]
    if chaos["scenario"] == "promotion":
        assert chaos["promotions"] >= 1 and chaos["restarts"] == 0
    elif chaos["scenario"] == "reshard":
        assert chaos["reshard_epoch"] >= 1
    else:  # corruption
        assert chaos["restarts"] >= 1
