"""Shard-kill chaos: supervised recovery vs an unsupervised store.

Replay the same synthetic request trace against the same seeded fault
plan — one ``shard_crash`` killing 1 of 4 shard processes mid-serve —
through two sharded backends:

- **supervised** — a :class:`~repro.shard.ShardSupervisor` restarts the
  dead shard from its WAL checkpoint between requests, and the
  scatter-gather path hedges the failed gather to the stale checkpoint
  tier, so every request is served (some stale, none failed);
- **unsupervised** — no supervisor and no hedging: the first gather
  that touches the dead shard raises
  :class:`~repro.shard.ShardCrashError`, the server fails the request,
  and the shard's node range is lost for the rest of the trace.

The supervised arm must keep availability (served / submitted) at or
above 99% with zero unhandled exceptions; the unsupervised arm must
lose requests.  After the replay, the supervised store is caught up and
a full-table scatter-gather must be bit-identical to the backend's
freshly computed embedding — recovery converges, it does not drift.

The run streams live telemetry (``shard_event`` records interleaved
with ``serve_request`` events) to
``benchmarks/results/shard_recovery.live.jsonl`` — the file the CI
``shard-chaos`` job uploads.
"""

import numpy as np
from common import (  # noqa: F401
    RESULTS_DIR,
    dataset,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_seconds, format_table
from repro.core import OMeGaConfig, OMeGaEmbedder
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.memsim.clock import VirtualClock
from repro.obs import MetricsRegistry
from repro.obs.observatory import append_trajectory_point
from repro.obs.observatory.manifest import git_sha
from repro.obs.observatory.perfgate import DEFAULT_TRAJECTORY
from repro.serve import EmbeddingServer, RequestTrace, ServePolicy
from repro.serve.sharded import ShardedEmbeddingBackend
from repro.shard import ShardPolicy, SupervisorPolicy

DIM = 16
N_THREADS = 8
N_SHARDS = 4
N_REQUESTS = 200
TRACE_SEED = 3
#: 1-based full-tier lookup at which the shard dies (mid-serve).
CRASH_AT_LOOKUP = 50
CRASHED_SHARD = 1
#: Mean node count of an interactive request (uniform 1..16).
MEAN_INTERACTIVE_NODES = 8.5
COMPLETED = ("served", "deadline_exceeded")
AVAILABILITY_TARGET = 0.99


def _plan() -> FaultPlan:
    return FaultPlan(
        events=(
            FaultEvent(
                kind="shard_crash",
                site=f"shard.{CRASHED_SHARD}",
                count=CRASH_AT_LOOKUP,
            ),
        ),
        seed=TRACE_SEED,
    )


def _run_arm(graph, supervised: bool, stream=None):
    metrics = MetricsRegistry()
    embedder = OMeGaEmbedder(
        OMeGaConfig(n_threads=N_THREADS, dim=DIM, capacity_scale=graph.scale),
        metrics=metrics,
    )
    injector = FaultInjector(_plan(), metrics)
    backend = ShardedEmbeddingBackend(
        embedder,
        graph.edges,
        graph.n_nodes,
        shard_policy=ShardPolicy(
            n_shards=N_SHARDS, hedge_enabled=supervised
        ),
        supervisor_policy=SupervisorPolicy() if supervised else None,
        faults=injector,
        metrics=metrics,
        stream=stream,
    )
    try:
        backend.warm_up()
        per_node = backend.compute_cost(1)
        # Light load with generous deadlines: the monolithic baseline
        # serves this trace 200/200 at full fidelity, so any
        # availability loss below is attributable to the shard crash.
        trace = RequestTrace.synthesize(
            seed=TRACE_SEED,
            n_requests=N_REQUESTS,
            per_node_cost_s=per_node,
            load=0.5,
            deadline_slack=60.0,
        )
        policy = ServePolicy.calibrated(per_node * MEAN_INTERACTIVE_NODES)
        server = EmbeddingServer(
            backend,
            policy,
            clock=VirtualClock(),
            metrics=metrics,
            stream=stream,
        )
        report = server.run_trace(trace)
        assert report.balanced, "accounting invariant broken"
        shard_info = backend.shard_summary()

        identical_after_catchup = None
        if supervised:
            # Recovery must converge: catch every shard up, then a
            # full-table gather must equal the freshly computed table.
            shards = backend.shards
            for host in shards.hosts:
                shards.catch_up(host.shard_id)
            result = shards.lookup(np.arange(shards.routing.n_nodes))
            identical_after_catchup = bool(
                np.array_equal(result.rows, shards.table)
                and result.stale_rows == 0
            )
        return report, metrics, shard_info, identical_after_catchup
    finally:
        backend.close()


def _experiment(graph):
    session = telemetry_session("shard_recovery", graph=graph.name)
    RESULTS_DIR.mkdir(exist_ok=True)
    session.stream_to(RESULTS_DIR / "shard_recovery.live.jsonl")
    arms = {}
    for label, supervised in (("supervised", True), ("unsupervised", False)):
        stream = session.stream if supervised else None
        report, metrics, shard_info, identical = _run_arm(
            graph, supervised, stream=stream
        )
        arms[label] = {
            "report": report,
            "availability": report.served / max(report.submitted, 1),
            "p99_s": report.latency_percentile(99, COMPLETED),
            "unhandled": int(metrics.value("serve.unhandled_exceptions")),
            "stale_rows": int(metrics.value("shard.stale_rows")),
            "restarts": shard_info["restarts"],
            "hedged": shard_info["hedged_checkpoint"]
            + shard_info["hedged_replica"],
            "identical_after_catchup": identical,
        }
        session.event(
            "shard_recovery_arm",
            arm=label,
            restarts=shard_info["restarts"],
            incidents=shard_info["incidents"],
            availability=arms[label]["availability"],
            p99_s=arms[label]["p99_s"],
            unhandled=arms[label]["unhandled"],
            stale_rows=arms[label]["stale_rows"],
            identical_after_catchup=identical,
            **report.summary(),
        )
    session.close_stream()
    save_telemetry(session, "shard_recovery")
    return arms


def test_shard_recovery(run_once):
    graph = dataset("PK")
    arms = run_once(lambda: _experiment(graph))
    sup, unsup = arms["supervised"], arms["unsupervised"]

    table = format_table(
        [
            "arm", "availability", "failed", "p99", "restarts",
            "stale rows", "hedged",
        ],
        [
            [
                label,
                f"{arm['availability'] * 100:.1f}%",
                str(arm["report"].failed),
                format_seconds(arm["p99_s"]),
                str(arm["restarts"]),
                str(arm["stale_rows"]),
                str(arm["hedged"]),
            ]
            for label, arm in arms.items()
        ],
        title=(
            f"Shard recovery on {graph.name} — {N_REQUESTS} requests,"
            f" {N_SHARDS} shards, shard {CRASHED_SHARD} killed at"
            f" lookup {CRASH_AT_LOOKUP}"
        ),
    )
    write_report("shard_recovery", table)

    append_trajectory_point(
        DEFAULT_TRAJECTORY,
        {
            "suite": "bench_shard_recovery",
            "git_sha": git_sha(),
            "graph": graph.name,
            "n_shards": N_SHARDS,
            "points": [
                {
                    "arm": label,
                    "availability": arm["availability"],
                    "p99_s": arm["p99_s"],
                    "failed": arm["report"].failed,
                    "restarts": arm["restarts"],
                    "stale_rows": arm["stale_rows"],
                }
                for label, arm in arms.items()
            ],
        },
    )

    # The supervised arm recovers: near-total availability, no unhandled
    # errors, the dead shard restarted, and recovery converges bitwise.
    assert sup["availability"] >= AVAILABILITY_TARGET, (
        f"supervised availability {sup['availability']:.3f}"
        f" below {AVAILABILITY_TARGET}"
    )
    assert sup["unhandled"] == 0
    assert sup["restarts"] >= 1, "the killed shard never restarted"
    assert sup["identical_after_catchup"] is True
    # The unsupervised arm pays for the same fault with lost requests.
    assert unsup["report"].failed > 0, (
        "unsupervised arm lost no requests — the fault never landed"
    )
    assert unsup["availability"] < sup["availability"]
