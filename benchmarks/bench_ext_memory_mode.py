"""Extension: App-directed mode (OMeGa) vs transparent Memory Mode.

The paper (§II-B) chooses App-directed mode; Memory Mode instead turns
DRAM into a direct-mapped 4 KiB-block write-back cache in front of PM.
This experiment drives the real column-access trace of an SpMM workload
through an exact direct-mapped cache simulation, then compares the
resulting effective access time against OMeGa's explicit WoFP placement.
"""

from common import (  # noqa: F401
    dataset,
    dense_operand,
    engine_for,
    run_once,
    write_report,
)

from repro.bench import format_table
from repro.memsim import CostModel, MemoryKind
from repro.memsim.memorymode import (
    DirectMappedCache,
    MemoryModeModel,
    sample_dense_access_addresses,
)


def _experiment(name):
    graph = dataset(name)
    matrix = graph.adjacency_csdb()
    dense = dense_operand(graph)
    engine = engine_for(graph)
    omega = engine.multiply(matrix, dense, compute=False)

    # Memory Mode: simulate the DRAM cache over the actual access trace.
    # The cache is sized to a *quarter* of the dense working set,
    # emulating the billion-scale regime (TW-2010/FR at full size) where
    # the pipeline working set exceeds DRAM — precisely the situation
    # §III-C argues hardware-managed caches handle passively and poorly.
    dense_bytes = matrix.n_cols * dense.shape[1] * 8
    cache = DirectMappedCache(max(dense_bytes // 4, 4096))
    addresses = sample_dense_access_addresses(matrix.col_list, dense.shape[1])
    hit_rate = cache.access_addresses(addresses)
    model = MemoryModeModel(
        dram=engine.topology.device(MemoryKind.DRAM),
        pm=engine.topology.device(MemoryKind.PM),
        cost_model=CostModel(),
    )
    # Replace the engine's dense-gather cost with the Memory-Mode serve
    # time; keep every other term.
    z = sum(
        p.z_entropy * p.nnz_count for p in omega.partitions
    ) / max(matrix.nnz, 1)
    sharing = max(1, engine.config.n_threads // 2)
    dense_bytes = matrix.nnz * dense.shape[1] * 8.0
    mm_dense = model.access_time(
        dense_bytes / engine.config.n_threads, hit_rate, z, sharing
    )
    omega_dense = omega.trace.seconds("get_dense_nnz") / engine.config.n_threads
    other = omega.sim_seconds - omega_dense
    memory_mode_seconds = other + mm_dense
    return graph, omega.sim_seconds, memory_mode_seconds, hit_rate


def test_ext_memory_mode(run_once):
    rows = run_once(lambda: [_experiment(n) for n in ("PK", "LJ", "OR")])
    table = format_table(
        [
            "Graph",
            "App-direct (OMeGa)",
            "Memory Mode",
            "slowdown",
            "cache hit rate",
        ],
        [
            [
                graph.name,
                f"{omega * 1e3:.3f} ms",
                f"{mm * 1e3:.3f} ms",
                f"{mm / omega:.2f}x",
                f"{hit * 100:.1f}%",
            ]
            for graph, omega, mm, hit in rows
        ],
        title=(
            "Extension — App-directed vs Memory Mode"
            " (4 KiB direct-mapped DRAM cache, real access trace)"
        ),
    )
    write_report("ext_memory_mode", table)
    for graph, omega, mm, hit in rows:
        # Under capacity pressure the passive cache misses on the long
        # scattered tail and each miss drags a full 4 KiB block across
        # from PM — App-directed placement wins clearly.
        assert mm > omega
        assert hit < 0.9
