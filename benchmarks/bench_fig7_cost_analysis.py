"""Fig. 7: SpMM cost anatomy.

(a) execution-time breakdown of the five Algorithm 1 steps;
(b) per-thread get_dense_nnz throughput vs the workload scatter factor
    under WaTA, on PM and DRAM;
(c) per-thread running time vs workload entropy, with the least-squares
    slope K of Eq. 4.
"""

import numpy as np
from common import (  # noqa: F401
    dataset,
    dense_operand,
    engine_for,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_table
from repro.core import AllocationScheme, MemoryMode
from repro.memsim.trace import SPMM_CATEGORIES


def _breakdown(graph):
    session = telemetry_session("fig7a_breakdown", graph=graph.name)
    result = engine_for(graph, session=session).multiply(
        graph.adjacency_csdb(), dense_operand(graph), compute=False
    )
    session.add_cost_trace("spmm", result.trace)
    save_telemetry(session, "fig7a_breakdown")
    total = sum(result.trace.seconds(c) for c in SPMM_CATEGORIES)
    return {c: result.trace.seconds(c) / total for c in SPMM_CATEGORIES}


def _throughput_vs_scatter(graph, mode):
    engine = engine_for(
        graph,
        allocation=AllocationScheme.WORKLOAD_BALANCED,
        memory_mode=mode,
        prefetcher_enabled=False,
    )
    result = engine.multiply(
        graph.adjacency_csdb(), dense_operand(graph), compute=False
    )
    points = []
    for partition, seconds in zip(result.partitions, result.thread_times):
        if partition.nnz_count == 0 or seconds == 0:
            continue
        points.append(
            (partition.scatter, partition.nnz_count / seconds / 1e6)
        )
    return sorted(points)


def _time_vs_entropy(graph):
    engine = engine_for(
        graph, allocation=AllocationScheme.WORKLOAD_BALANCED
    )
    result = engine.multiply(
        graph.adjacency_csdb(), dense_operand(graph), compute=False
    )
    entropies = np.array([p.entropy for p in result.partitions])
    times = np.asarray(result.thread_times)
    keep = entropies > 0
    slope = float(
        np.sum(entropies[keep] * times[keep]) / np.sum(entropies[keep] ** 2)
    )
    residual = times[keep] - slope * entropies[keep]
    r2 = 1.0 - float(
        np.sum(residual**2) / np.sum((times[keep] - times[keep].mean()) ** 2)
    )
    return entropies[keep], times[keep], slope, r2


def test_fig7a_breakdown(run_once):
    graph = dataset("LJ")
    shares = run_once(lambda: _breakdown(graph))
    table = format_table(
        ["step", "share"],
        [[c, f"{shares[c] * 100:.1f}%"] for c in SPMM_CATEGORIES],
        title="Fig. 7(a) — SpMM execution-time breakdown (LJ)",
    )
    write_report("fig7a_breakdown", table)
    assert shares["get_dense_nnz"] == max(shares.values())


def test_fig7b_throughput_vs_scatter(run_once):
    graph = dataset("LJ")

    def experiment():
        return {
            "PM": _throughput_vs_scatter(graph, MemoryMode.PM_ONLY),
            "DRAM": _throughput_vs_scatter(graph, MemoryMode.DRAM_ONLY),
        }

    curves = run_once(experiment)
    lines = ["Fig. 7(b) — thread throughput vs scatter factor (WaTA, LJ)"]
    for device, points in curves.items():
        lines.append(f"  {device}:")
        for scatter, mnnz in points:
            lines.append(f"    Wsca={scatter:.6f}  throughput={mnnz:.1f} Mnnz/s")
    write_report("fig7b_scatter", "\n".join(lines))
    # Both curves trend the same way: more scattered (smaller Wsca) ->
    # lower throughput.  Compare the scattered tail to the dense head.
    for points in curves.values():
        low = np.mean([t for _, t in points[: max(len(points) // 3, 1)]])
        high = np.mean([t for _, t in points[-max(len(points) // 3, 1):]])
        assert high > low


def test_fig7c_time_vs_entropy(run_once):
    graph = dataset("LJ")
    entropies, times, slope, r2 = run_once(lambda: _time_vs_entropy(graph))
    lines = [
        "Fig. 7(c) — thread running time vs workload entropy (WaTA, LJ)",
        f"  least-squares slope K = {slope:.3e} s/nat, R^2 = {r2:.3f}",
    ]
    for h, t in sorted(zip(entropies, times)):
        lines.append(f"    H={h:7.3f}  T={t * 1e3:8.4f} ms")
    write_report("fig7c_entropy", "\n".join(lines))
    # The paper reports a strong linear relationship.
    assert r2 > 0.5
