"""Ablation: ASL's Eq. 9 partition count vs fixed granularities.

We squeeze the simulated DRAM so streaming matters, then compare the
adaptive plan against no overlap (n=1 exposure) and against a range of
fixed partition counts.
"""

from common import (  # noqa: F401
    dataset,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_table
from repro.core import StreamPlan
from repro.core.asl import optimal_partitions
from repro.core.config import OMeGaConfig
from repro.core.spmm import SpMMEngine
from repro.memsim import MemoryKind


def test_ablation_asl_partitioning(run_once):
    graph = dataset("LJ")
    dim = 32

    def experiment():
        # A DRAM budget that forces a non-trivial (interior) Eq. 9 split:
        # the scaled budget sits between 2x and 5x the dense footprint.
        engine = SpMMEngine(
            OMeGaConfig(n_threads=30, dim=dim, capacity_scale=9000)
        )
        dense_bytes = graph.n_nodes * dim * 8.0
        sparse_bytes = graph.adjacency_csdb().nnz * 12.0
        budget = engine.config.dram_headroom * engine.scaled_capacity(
            MemoryKind.DRAM
        )
        n_star = optimal_partitions(graph.n_nodes, dim, budget, sparse_bytes)
        load = dense_bytes / engine.loader.pm_seq_read_bandwidth
        compute = load * 0.8  # a compute phase comparable to the load
        rows = []
        for n in sorted({1, 2, 4, 8, 16, dim, n_star}):
            plan = StreamPlan(
                n_partitions=n,
                batch_bytes=dense_bytes / n,
                total_load_seconds=load,
            )
            exposed = plan.exposed_seconds(compute)
            fits = 3 * dense_bytes / n + sparse_bytes + 2 * dense_bytes <= budget
            rows.append((n, exposed, fits, n == n_star))
        return n_star, rows

    n_star, rows = run_once(experiment)
    session = telemetry_session("ablation_asl", graph="LJ", dim=dim)
    for n, exposed, fits, star in rows:
        session.event(
            "asl_partition", n_partitions=n, exposed_s=exposed,
            fits_dram=fits, eq9_choice=star,
        )
    save_telemetry(session, "ablation_asl")
    table = format_table(
        ["n partitions", "exposed stream time", "fits DRAM", "Eq. 9 choice"],
        [
            [n, f"{exposed * 1e3:.4f} ms", "yes" if fits else "no", "*" if star else ""]
            for n, exposed, fits, star in rows
        ],
        title=f"Ablation — ASL granularity (Eq. 9 picks n={n_star})",
    )
    write_report("ablation_asl", table)
    chosen = next(r for r in rows if r[3])
    # Eq. 9's choice must fit in DRAM...
    assert chosen[2]
    # ...and be the *minimal* feasible split (Eq. 9 is a lower bound):
    # fewer, larger batches mean less per-batch management overhead while
    # still satisfying the peak-memory inequality.
    feasible = [r for r in rows if r[2]]
    assert chosen[0] == min(r[0] for r in feasible)
    # Sanity of the overlap model: exposure shrinks as batches increase.
    exposures = [r[1] for r in rows]
    assert all(e2 <= e1 for e1, e2 in zip(exposures, exposures[1:]))
