"""Fig. 17: scalability — thread sweep (a) and R-MAT size sweep (b)."""

import numpy as np
from common import (  # noqa: F401
    dataset,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_seconds, format_table
from repro.core import OMeGaConfig, OMeGaEmbedder, SpMMEngine
from repro.core.embedding import embedder_for_dataset
from repro.formats import edges_to_csdb
from repro.graphs import rmat_edges


def test_fig17a_thread_scaling(run_once):
    graph = dataset("LJ")
    threads = (5, 10, 15, 20, 25, 30)

    def experiment():
        rows = []
        for t in threads:
            embedder = embedder_for_dataset(
                graph, OMeGaConfig(n_threads=t, dim=32)
            )
            result = embedder.embed_dataset(graph)
            rows.append((t, result.sim_seconds, result.spmm_seconds))
        return rows

    rows = run_once(experiment)
    session = telemetry_session("fig17a_thread_scaling", graph="LJ")
    for t, total, spmm in rows:
        session.event(
            "scaling_point", threads=t, overall_s=total, spmm_s=spmm
        )
    save_telemetry(session, "fig17a_thread_scaling")
    table = format_table(
        ["#threads", "overall", "SpMM"],
        [
            [t, format_seconds(total), format_seconds(spmm)]
            for t, total, spmm in rows
        ],
        title="Fig. 17(a) — scalability with threads (LJ, simulated)",
    )
    write_report("fig17a_thread_scaling", table)
    totals = [total for _, total, _ in rows]
    assert totals[0] > totals[-1]
    assert all(t2 <= t1 * 1.05 for t1, t2 in zip(totals, totals[1:]))


def test_fig17b_size_scaling(run_once):
    scales = (10, 12, 14, 16, 18)

    def experiment():
        rows = []
        for scale in scales:
            edges = rmat_edges(scale, edge_factor=12, seed=0)
            n_nodes = 1 << scale
            csdb = edges_to_csdb(edges, n_nodes)
            dense = np.random.default_rng(0).standard_normal((n_nodes, 32))
            engine = SpMMEngine(OMeGaConfig(n_threads=30, dim=32))
            spmm = engine.multiply(csdb, dense, compute=False).sim_seconds
            rows.append((n_nodes, csdb.nnz, spmm))
        return rows

    rows = run_once(experiment)
    session = telemetry_session("fig17b_size_scaling", scales=list(scales))
    for n, nnz, t in rows:
        session.event("size_point", n_nodes=n, nnz=nnz, spmm_s=t)
    save_telemetry(session, "fig17b_size_scaling")
    table = format_table(
        ["#nodes", "nnz", "SpMM time", "ns/nnz"],
        [
            [n, nnz, format_seconds(t), f"{t / nnz * 1e9:.2f}"]
            for n, nnz, t in rows
        ],
        title="Fig. 17(b) — scalability with R-MAT graph size (simulated)",
    )
    write_report("fig17b_size_scaling", table)
    # Near-linear: time per nnz varies by < 4x over a 256x node sweep.
    per_nnz = [t / nnz for _, nnz, t in rows]
    assert max(per_nnz) / min(per_nnz) < 4.0


def test_fig17b_embedding_on_rmat(run_once):
    """End-to-end embedding on one mid-size R-MAT (sparse + dense arms)."""

    def experiment():
        rows = []
        for edge_factor in (4, 32):  # sparse vs dense structure
            edges = rmat_edges(13, edge_factor=edge_factor, seed=1)
            embedder = OMeGaEmbedder(OMeGaConfig(n_threads=30, dim=16))
            result = embedder.embed_edges(edges, 1 << 13)
            rows.append((edge_factor, len(edges), result.sim_seconds))
        return rows

    rows = run_once(experiment)
    table = format_table(
        ["edge factor", "#edges", "overall time"],
        [[f, e, format_seconds(t)] for f, e, t in rows],
        title="Fig. 17(b) extra — end-to-end on sparse vs dense R-MAT",
    )
    write_report("fig17b_rmat_embedding", table)
    assert rows[1][2] > rows[0][2]  # denser graph costs more
