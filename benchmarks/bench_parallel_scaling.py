"""Parallel scaling: serial backend vs shared-memory workers (2 / 4).

Times the real SpMM kernel dispatch (``SpMMResult.kernel_wall_seconds``)
on a seeded R-MAT graph under the serial simulated backend and the
shared-memory pool at 2 and 4 workers, prints the speedup table, checks
bit-identity of every parallel result against serial, and appends the
measured speedups to the ``BENCH_omega.json`` trajectory.

Each arm also runs one *instrumented* multiply with a real tracer, so
the per-partition ``spmm_partition`` worker spans come back across the
process boundary; their kernel walls give the partition imbalance
(max/median) — the number EaTA allocation is supposed to hold near 1.

Wall-clock speedup is a *physical* property: it requires free cores.
The benchmark measures and reports honestly on any machine, and asserts
the >= 1.5x 4-worker speedup target only where at least 4 cores are
available to this process (``os.sched_getaffinity``); on smaller
machines the table and trajectory still record the observed ratios so
the number is auditable wherever CI has real parallelism.
"""

import os
import statistics

import numpy as np
from common import (  # noqa: F401
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_seconds, format_table
from repro.core import ExecBackend, OMeGaConfig, ParallelConfig, SpMMEngine
from repro.formats import edges_to_csdb
from repro.graphs import rmat_edges
from repro.obs.observatory import append_trajectory_point
from repro.obs.observatory.manifest import git_sha
from repro.obs.observatory.perfgate import DEFAULT_TRAJECTORY
from repro.obs.tracer import SpanTracer
from repro.parallel import close_shared_executors

SCALE = 13
EDGE_FACTOR = 16.0
DIM = 64
SEED = 0
REPEATS = 3
SPEEDUP_TARGET = 1.5


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _engine(
    backend: ExecBackend, n_workers: int, tracer: SpanTracer | None = None
) -> SpMMEngine:
    return SpMMEngine(
        OMeGaConfig(
            n_threads=8,
            dim=DIM,
            parallel=ParallelConfig(backend=backend, n_workers=n_workers),
        ),
        tracer=tracer,
    )


def _median_kernel_wall(engine, matrix, dense) -> tuple[float, np.ndarray]:
    """Median dispatch wall over REPEATS runs (first run warms the pool)."""
    output = engine.multiply(matrix, dense).output  # warm-up, not timed
    samples = []
    for _ in range(REPEATS):
        result = engine.multiply(matrix, dense)
        samples.append(result.kernel_wall_seconds)
        output = result.output
    return statistics.median(samples), output


def _partition_imbalance(
    backend: ExecBackend, n_workers: int, matrix, dense
) -> float:
    """max/median per-partition kernel wall of one instrumented multiply.

    The tracer makes the engine thread a trace context into the kernel
    dispatch, so every partition (worker process or serial loop) ships
    back an ``spmm_partition`` span with its own kernel wall.
    """
    tracer = SpanTracer()
    engine = _engine(backend, n_workers, tracer=tracer)
    engine.multiply(matrix, dense)  # pool warm-up (spans discarded below)
    tracer.reset()
    engine.multiply(matrix, dense)
    walls = [
        span.attributes["kernel_wall_s"]
        for span in tracer.finished
        if span.name == "spmm_partition"
    ]
    # 8 threads' worth of ranges — if the spans did not come back, the
    # trace context never crossed the process boundary.
    assert len(walls) >= 2, (
        f"expected per-partition spans from {backend.value}, got {len(walls)}"
    )
    median = statistics.median(walls)
    if median <= 0:
        return float("inf")
    return max(walls) / median


def test_parallel_scaling(run_once):
    edges = rmat_edges(SCALE, edge_factor=EDGE_FACTOR, seed=SEED)
    n_nodes = 1 << SCALE
    matrix = edges_to_csdb(edges, n_nodes)
    dense = np.random.default_rng(SEED).standard_normal((n_nodes, DIM))
    cores = _available_cores()

    def experiment():
        serial_s, serial_out = _median_kernel_wall(
            _engine(ExecBackend.SIMULATED, 1), matrix, dense
        )
        serial_imb = _partition_imbalance(
            ExecBackend.SIMULATED, 1, matrix, dense
        )
        rows = [("serial", 1, serial_s, 1.0, True, serial_imb)]
        for n_workers in (2, 4):
            wall_s, out = _median_kernel_wall(
                _engine(ExecBackend.SHARED_MEMORY, n_workers), matrix, dense
            )
            imbalance = _partition_imbalance(
                ExecBackend.SHARED_MEMORY, n_workers, matrix, dense
            )
            rows.append(
                (
                    "shared_memory",
                    n_workers,
                    wall_s,
                    serial_s / wall_s if wall_s > 0 else float("inf"),
                    np.array_equal(out, serial_out),
                    imbalance,
                )
            )
        return rows

    rows = run_once(experiment)
    close_shared_executors()

    session = telemetry_session(
        "parallel_scaling",
        scale=SCALE,
        dim=DIM,
        nnz=int(matrix.nnz),
        cores=cores,
    )
    for backend, workers, wall_s, speedup, identical, imbalance in rows:
        session.event(
            "scaling_point",
            backend=backend,
            workers=workers,
            kernel_wall_s=wall_s,
            speedup=speedup,
            bit_identical=identical,
            partition_imbalance=imbalance,
        )
    save_telemetry(session, "parallel_scaling")

    table = format_table(
        [
            "backend", "workers", "kernel wall", "speedup",
            "bit-identical", "imbalance",
        ],
        [
            [
                backend,
                workers,
                format_seconds(wall_s),
                f"{speedup:.2f}x",
                "yes" if identical else "NO",
                f"{imbalance:.2f}",
            ]
            for backend, workers, wall_s, speedup, identical, imbalance in rows
        ],
        title=(
            f"Parallel scaling — R-MAT s{SCALE}, d={DIM},"
            f" {matrix.nnz} nnz, median of {REPEATS}"
            f" ({cores} core(s) available)"
        ),
    )
    write_report("parallel_scaling", table)

    append_trajectory_point(
        DEFAULT_TRAJECTORY,
        {
            "suite": "bench_parallel_scaling",
            "git_sha": git_sha(),
            "cores": cores,
            "scale": SCALE,
            "dim": DIM,
            "nnz": int(matrix.nnz),
            "points": [
                {
                    "backend": backend,
                    "workers": workers,
                    "kernel_wall_s": wall_s,
                    "speedup": speedup,
                    "bit_identical": identical,
                    "partition_imbalance": imbalance,
                }
                for backend, workers, wall_s, speedup, identical, imbalance
                in rows
            ],
        },
    )

    # Correctness is unconditional: every backend must agree bitwise.
    assert all(identical for *_, identical, _imb in rows)
    # The imbalance ratio is max/median: finite and >= 1 by construction
    # whenever real per-partition walls came back.
    assert all(np.isfinite(imb) and imb >= 1.0 for *_, imb in rows)
    # Wall speedup needs physical cores; enforce the target only where
    # the machine can express it.
    four_worker = next(r for r in rows if r[1] == 4)
    if cores >= 4:
        assert four_worker[3] >= SPEEDUP_TARGET, (
            f"4-worker speedup {four_worker[3]:.2f}x below"
            f" {SPEEDUP_TARGET}x on a {cores}-core machine"
        )
