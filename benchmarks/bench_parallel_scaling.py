"""Parallel scaling: serial vs shared-memory vs threads (2 / 4 workers).

Times the real SpMM kernel dispatch (``SpMMResult.kernel_wall_seconds``)
on a seeded R-MAT graph under the serial simulated backend, the
shared-memory pool, and the thread pool at 2 and 4 workers.  Every real
arm is measured twice over:

- **cold** — the first multiply on a freshly reset pool, paying worker
  start-up and operand staging (the shared copy of the matrix, the
  mapped scratch segments);
- **warm** — the median of the following calls, riding the persistent
  segment cache and batched plan submission, plus the median *plan
  overhead* (the executor's ``last_submit_wall_s``: staging + enqueue
  time per call).

The table, the ``BENCH_omega.json`` trajectory, and the assertions all
carry both: on any machine the warm path must beat the cold path for
the shared-memory backend (that is the point of the segment cache), and
bit-identity of every parallel result against serial is unconditional.

Each arm also runs one *instrumented* multiply with a real tracer, so
the per-partition ``spmm_partition`` spans come back across the process
boundary; their kernel walls give the partition imbalance (max/median)
— the number EaTA allocation is supposed to hold near 1.

Wall-clock speedup is a *physical* property: it requires free cores.
The benchmark measures and reports honestly on any machine, and asserts
the >= 1.5x 4-worker speedup target (for at least one real backend)
only where at least 4 cores are available to this process
(``os.sched_getaffinity``); on smaller machines the table and
trajectory still record the observed ratios so the number is auditable
wherever CI has real parallelism.
"""

import os
import statistics

import numpy as np
from common import (  # noqa: F401
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_seconds, format_table
from repro.core import ExecBackend, OMeGaConfig, ParallelConfig, SpMMEngine
from repro.formats import edges_to_csdb
from repro.graphs import rmat_edges
from repro.obs.observatory import append_trajectory_point
from repro.obs.observatory.manifest import git_sha
from repro.obs.observatory.perfgate import DEFAULT_TRAJECTORY
from repro.obs.tracer import SpanTracer
from repro.parallel import (
    close_shared_executors,
    shutdown_threads_executors,
)

SCALE = 13
EDGE_FACTOR = 16.0
DIM = 64
SEED = 0
REPEATS = 3
SPEEDUP_TARGET = 1.5
REAL_BACKENDS = (ExecBackend.SHARED_MEMORY, ExecBackend.THREADS)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _reset_pools() -> None:
    """Tear down every process-wide pool so cold timings are honest."""
    close_shared_executors()
    shutdown_threads_executors()


def _engine(
    backend: ExecBackend, n_workers: int, tracer: SpanTracer | None = None
) -> SpMMEngine:
    return SpMMEngine(
        OMeGaConfig(
            n_threads=8,
            dim=DIM,
            parallel=ParallelConfig(backend=backend, n_workers=n_workers),
        ),
        tracer=tracer,
    )


def _measure_arm(
    backend: ExecBackend, n_workers: int, matrix, dense
) -> tuple[float, float, float, np.ndarray]:
    """(cold wall, median warm wall, median plan overhead, output).

    The pool registries are reset first, so the cold call genuinely
    pays worker start-up and operand staging; the warm calls then ride
    whatever the backend persists between calls.
    """
    _reset_pools()
    engine = _engine(backend, n_workers)
    result = engine.multiply(matrix, dense)
    cold_s = result.kernel_wall_seconds
    output = result.output
    warm_samples, overhead_samples = [], []
    for _ in range(REPEATS):
        result = engine.multiply(matrix, dense)
        warm_samples.append(result.kernel_wall_seconds)
        stats = getattr(engine.kernel_executor, "stats", None)
        overhead_samples.append(
            stats.last_submit_wall_s if stats is not None else 0.0
        )
        output = result.output
    return (
        cold_s,
        statistics.median(warm_samples),
        statistics.median(overhead_samples),
        output,
    )


def _partition_imbalance(
    backend: ExecBackend, n_workers: int, matrix, dense
) -> float:
    """max/median per-partition kernel wall of one instrumented multiply.

    The tracer makes the engine thread a trace context into the kernel
    dispatch, so every partition (worker process, pool thread, or the
    serial loop) ships back an ``spmm_partition`` span with its own
    kernel wall.
    """
    tracer = SpanTracer()
    engine = _engine(backend, n_workers, tracer=tracer)
    engine.multiply(matrix, dense)  # pool warm-up (spans discarded below)
    tracer.reset()
    engine.multiply(matrix, dense)
    walls = [
        span.attributes["kernel_wall_s"]
        for span in tracer.finished
        if span.name == "spmm_partition"
    ]
    # 8 threads' worth of ranges — if the spans did not come back, the
    # trace context never crossed the process boundary.
    assert len(walls) >= 2, (
        f"expected per-partition spans from {backend.value}, got {len(walls)}"
    )
    median = statistics.median(walls)
    if median <= 0:
        return float("inf")
    return max(walls) / median


def test_parallel_scaling(run_once):
    edges = rmat_edges(SCALE, edge_factor=EDGE_FACTOR, seed=SEED)
    n_nodes = 1 << SCALE
    matrix = edges_to_csdb(edges, n_nodes)
    dense = np.random.default_rng(SEED).standard_normal((n_nodes, DIM))
    cores = _available_cores()

    def experiment():
        cold_s, warm_s, overhead_s, serial_out = _measure_arm(
            ExecBackend.SIMULATED, 1, matrix, dense
        )
        serial_imb = _partition_imbalance(
            ExecBackend.SIMULATED, 1, matrix, dense
        )
        rows = [
            ("serial", 1, cold_s, warm_s, overhead_s, 1.0, True, serial_imb)
        ]
        serial_warm = warm_s
        for backend in REAL_BACKENDS:
            for n_workers in (2, 4):
                cold_s, warm_s, overhead_s, out = _measure_arm(
                    backend, n_workers, matrix, dense
                )
                imbalance = _partition_imbalance(
                    backend, n_workers, matrix, dense
                )
                rows.append(
                    (
                        backend.value,
                        n_workers,
                        cold_s,
                        warm_s,
                        overhead_s,
                        serial_warm / warm_s if warm_s > 0 else float("inf"),
                        np.array_equal(out, serial_out),
                        imbalance,
                    )
                )
        return rows

    rows = run_once(experiment)
    _reset_pools()

    session = telemetry_session(
        "parallel_scaling",
        scale=SCALE,
        dim=DIM,
        nnz=int(matrix.nnz),
        cores=cores,
    )
    for (
        backend, workers, cold_s, warm_s, overhead_s, speedup, identical,
        imbalance,
    ) in rows:
        session.event(
            "scaling_point",
            backend=backend,
            workers=workers,
            cold_wall_s=cold_s,
            kernel_wall_s=warm_s,
            plan_overhead_s=overhead_s,
            speedup=speedup,
            bit_identical=identical,
            partition_imbalance=imbalance,
        )
    save_telemetry(session, "parallel_scaling")

    table = format_table(
        [
            "backend", "workers", "cold wall", "warm wall", "plan ovh",
            "speedup", "bit-identical", "imbalance",
        ],
        [
            [
                backend,
                workers,
                format_seconds(cold_s),
                format_seconds(warm_s),
                format_seconds(overhead_s),
                f"{speedup:.2f}x",
                "yes" if identical else "NO",
                f"{imbalance:.2f}",
            ]
            for (
                backend, workers, cold_s, warm_s, overhead_s, speedup,
                identical, imbalance,
            ) in rows
        ],
        title=(
            f"Parallel scaling — R-MAT s{SCALE}, d={DIM},"
            f" {matrix.nnz} nnz, warm = median of {REPEATS}"
            f" ({cores} core(s) available)"
        ),
    )
    write_report("parallel_scaling", table)

    append_trajectory_point(
        DEFAULT_TRAJECTORY,
        {
            "suite": "bench_parallel_scaling",
            "git_sha": git_sha(),
            "cores": cores,
            "scale": SCALE,
            "dim": DIM,
            "nnz": int(matrix.nnz),
            "points": [
                {
                    "backend": backend,
                    "workers": workers,
                    "cold_wall_s": cold_s,
                    "kernel_wall_s": warm_s,
                    "plan_overhead_s": overhead_s,
                    "speedup": speedup,
                    "bit_identical": identical,
                    "partition_imbalance": imbalance,
                }
                for (
                    backend, workers, cold_s, warm_s, overhead_s, speedup,
                    identical, imbalance,
                ) in rows
            ],
        },
    )

    # Correctness is unconditional: every backend must agree bitwise.
    assert all(identical for *_, identical, _imb in rows)
    # The imbalance ratio is max/median: finite and >= 1 by construction
    # whenever real per-partition walls came back.
    assert all(np.isfinite(imb) and imb >= 1.0 for *_, imb in rows)
    # The warm path must amortize what the cold path pays: on any
    # machine — cores or not — a shared-memory call that reuses the
    # cached segments has strictly less to do than one that shares the
    # matrix and spawns workers first.
    for backend, workers, cold_s, warm_s, *_ in rows:
        if backend == ExecBackend.SHARED_MEMORY.value:
            assert warm_s < cold_s, (
                f"{backend}@{workers}: warm {warm_s * 1e3:.1f}ms not below"
                f" cold {cold_s * 1e3:.1f}ms — segment cache not engaged?"
            )
    # Wall speedup needs physical cores; enforce the target only where
    # the machine can express it, for the best 4-worker real backend.
    if cores >= 4:
        best = max(r[5] for r in rows if r[1] == 4)
        assert best >= SPEEDUP_TARGET, (
            f"best 4-worker speedup {best:.2f}x below"
            f" {SPEEDUP_TARGET}x on a {cores}-core machine"
        )
