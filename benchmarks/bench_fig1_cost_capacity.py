"""Fig. 1: the motivation chart — performance vs capacity vs cost per tier.

Fig. 1 positions DRAM-, PM-, SSD-based and OMeGa solutions on the
performance/capacity/cost plane.  This bench quantifies it: one SpMM
workload on each backing tier, with the tier's capacity and street price
(from the device models), plus OMeGa's heterogeneous configuration.
"""

from common import (  # noqa: F401
    dataset,
    dense_operand,
    engine_for,
    run_once,
    write_report,
)

from repro.bench import format_table
from repro.core import MemoryMode
from repro.memsim import MemoryKind, dram_spec, pm_spec, ssd_spec
from repro.memsim.devices import GIB


def test_fig1_cost_capacity_performance(run_once):
    graph = dataset("LJ")
    dense = dense_operand(graph)

    def experiment():
        def spmm(mode, prefetch):
            engine = engine_for(
                graph, memory_mode=mode, prefetcher_enabled=prefetch
            )
            return engine.multiply(
                graph.adjacency_csdb(), dense, compute=False
            ).sim_seconds

        dram_time = spmm(MemoryMode.DRAM_ONLY, False)
        pm_time = spmm(MemoryMode.PM_ONLY, False)
        omega_time = spmm(MemoryMode.HETEROGENEOUS, True)
        # SSD-based solution: the SEM-SpMM model on the same workload.
        from repro.baselines import SEMSpMMSimulator

        ssd_time = SEMSpMMSimulator().spmm_seconds(
            graph.adjacency_csdb().nnz, graph.n_nodes, dense.shape[1]
        )
        return dram_time, pm_time, omega_time, ssd_time

    dram_time, pm_time, omega_time, ssd_time = run_once(experiment)

    dram, pm, ssd = dram_spec(), pm_spec(), ssd_spec()
    two = 2  # sockets
    hetero_capacity = two * (dram.capacity_bytes + pm.capacity_bytes) / GIB
    hetero_price = two * (
        dram.capacity_bytes / GIB * dram.price_per_gib
        + pm.capacity_bytes / GIB * pm.price_per_gib
    )
    rows = [
        [
            "DRAM-based",
            f"{two * dram.capacity_bytes / GIB:.0f} GiB",
            f"${two * dram.capacity_bytes / GIB * dram.price_per_gib:,.0f}",
            f"{dram_time * 1e3:.3f} ms",
            f"{dram_time / dram_time:.2f}x",
        ],
        [
            "PM-based",
            f"{two * pm.capacity_bytes / GIB:.0f} GiB",
            f"${two * pm.capacity_bytes / GIB * pm.price_per_gib:,.0f}",
            f"{pm_time * 1e3:.3f} ms",
            f"{pm_time / dram_time:.2f}x",
        ],
        [
            "SSD-based",
            f"{ssd.capacity_bytes / GIB:.0f} GiB",
            f"${ssd.capacity_bytes / GIB * ssd.price_per_gib:,.0f}",
            f"{ssd_time * 1e3:.3f} ms",
            f"{ssd_time / dram_time:.2f}x",
        ],
        [
            "OMeGa (DRAM+PM)",
            f"{hetero_capacity:.0f} GiB",
            f"${hetero_price:,.0f}",
            f"{omega_time * 1e3:.3f} ms",
            f"{omega_time / dram_time:.2f}x",
        ],
    ]
    table = format_table(
        ["solution", "capacity", "memory cost", "SpMM time", "vs DRAM"],
        rows,
        title="Fig. 1 — performance / capacity / cost of the solution space",
    )
    write_report("fig1_cost_capacity", table)

    # The figure's message: PM is ~2x cheaper per GiB than DRAM, OMeGa
    # gets near-DRAM performance at ~9x the capacity, and the naive
    # PM/SSD paths are order(s) of magnitude slower.
    assert dram.price_per_gib / pm.price_per_gib > 1.8
    assert omega_time < 3 * dram_time
    assert pm_time > 10 * omega_time
    assert ssd_time > omega_time