"""Fig. 12: end-to-end embedding time — OMeGa vs six alternatives.

Arms: OMeGa, OMeGa-DRAM (ideal), OMeGa-PM (worst), ProNE-DRAM, ProNE-HM,
plus the SSD competitors Ginex and MariusGNN.  DRAM-only arms report OOM
on the billion-scale graphs, exactly as the paper omits those bars.
"""

import numpy as np
from common import (
    ALL_GRAPHS,
    N_THREADS,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.baselines import (
    GinexSimulator,
    MariusGNNSimulator,
    run_arm,
    standard_arms,
)
from repro.baselines.systems import speedup_table
from repro.bench import format_seconds, format_table, project_full_scale
from repro.graphs import load_dataset
from repro.graphs.datasets import PAPER_GRAPHS

#: The end-to-end experiment uses ProNE's default dimensionality — the
#: value that drives the paper's DRAM OOMs on TW-2010 and FR.
DIM = 128
#: Full d=128 pipelines are heavy; run them on 4x-smaller analogues.
#: Capacity scales with the dataset, so ratios and OOM shapes carry over.
EXTRA_SCALE = 4


def _collect():
    arms = standard_arms(n_threads=N_THREADS, dim=DIM)
    competitors = (GinexSimulator(), MariusGNNSimulator())
    session = telemetry_session(
        "fig12_overall", n_threads=N_THREADS, dim=DIM
    )
    rows = {}
    results = []
    for name in ALL_GRAPHS:
        graph = load_dataset(
            name, scale=PAPER_GRAPHS[name].default_scale * EXTRA_SCALE
        )
        row = {}
        for arm in arms:
            result = run_arm(
                arm, graph,
                tracer=session.tracer, metrics=session.metrics,
            )
            session.event(
                "arm", system=arm.name, graph=name,
                status=result.status, sim_seconds=result.sim_seconds,
            )
            results.append(result)
            row[arm.name] = result.sim_seconds
        for sim in competitors:
            result = sim.run(graph, dim=DIM)
            row[sim.name] = result.sim_seconds
        rows[name] = (row, graph.scale)
    save_telemetry(session, "fig12_overall")
    return rows, results


def test_fig12_overall_performance(run_once):
    rows, results = run_once(_collect)
    systems = [
        "OMeGa",
        "OMeGa-DRAM",
        "OMeGa-PM",
        "ProNE-DRAM",
        "ProNE-HM",
        "Ginex",
        "MariusGNN",
    ]
    table_rows = []
    for name, (row, scale) in rows.items():
        table_rows.append(
            [name]
            + [
                format_seconds(project_full_scale(row[s], scale))
                if np.isfinite(row[s])
                else "OOM"
                for s in systems
            ]
        )
    table = format_table(
        ["Graph"] + systems,
        table_rows,
        title=(
            "Fig. 12 — end-to-end running time (simulated, projected to"
            " full scale)"
        ),
    )
    speedups = speedup_table(results, reference="OMeGa")
    extra = ["", "Geometric-mean slowdown vs OMeGa (engine arms):"]
    for system, ratio in sorted(speedups.items(), key=lambda kv: kv[1]):
        extra.append(f"  {system:12s} {ratio:8.2f}x")
    competitor_ratios = []
    for name, (row, _) in rows.items():
        for s in ("Ginex", "MariusGNN", "ProNE-DRAM", "ProNE-HM", "OMeGa-PM"):
            if np.isfinite(row[s]):
                competitor_ratios.append(row[s] / row["OMeGa"])
    avg = float(np.mean(competitor_ratios))
    extra.append(
        f"Arithmetic-mean acceleration over the competitor pool:"
        f" {avg:.2f}x (paper: 32.03x)"
    )
    write_report("fig12_overall", table + "\n" + "\n".join(extra))

    for name, (row, _) in rows.items():
        assert row["OMeGa-DRAM"] < row["OMeGa"] or not np.isfinite(
            row["OMeGa-DRAM"]
        )
        assert row["OMeGa"] < row["ProNE-HM"]
        assert row["OMeGa"] < row["OMeGa-PM"]
    # The DRAM-only arms must OOM on the billion-scale graphs.
    for name in ("TW-2010", "FR"):
        row, _ = rows[name]
        assert not np.isfinite(row["OMeGa-DRAM"])
        assert not np.isfinite(row["ProNE-DRAM"])
    assert avg > 10.0
