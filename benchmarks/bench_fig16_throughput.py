"""Fig. 16: SpMM throughput (Mnnz/s) — across graphs and across threads."""

from common import (  # noqa: F401
    SPMM_GRAPHS,
    dataset,
    dense_operand,
    engine_for,
    run_once,
    save_telemetry,
    telemetry_session,
    write_report,
)

from repro.bench import format_table
from repro.core import PlacementScheme


def _throughputs(name, session):
    graph = dataset(name)
    dense = dense_operand(graph)
    nadp = engine_for(graph, session=session).multiply(
        graph.adjacency_csdb(), dense, compute=False
    )
    interleave = engine_for(
        graph, session=session, placement=PlacementScheme.INTERLEAVE
    ).multiply(graph.adjacency_csdb(), dense, compute=False)
    return (
        name,
        nadp.throughput_nnz_per_s / 1e6,
        interleave.throughput_nnz_per_s / 1e6,
    )


def test_fig16a_throughput_across_graphs(run_once):
    session = telemetry_session(
        "fig16a_throughput_graphs", graphs=list(SPMM_GRAPHS)
    )
    rows = run_once(
        lambda: [_throughputs(name, session) for name in SPMM_GRAPHS]
    )
    for name, nadp, interleave in rows:
        session.event(
            "throughput", graph=name, nadp_mnnz_s=nadp,
            interleave_mnnz_s=interleave,
        )
    save_telemetry(session, "fig16a_throughput_graphs")
    table = format_table(
        ["Graph", "OMeGa (Mnnz/s)", "OMeGa-w/o-NaDP (Mnnz/s)"],
        [[n, f"{a:.1f}", f"{b:.1f}"] for n, a, b in rows],
        title="Fig. 16(a) — SpMM throughput, 30 threads",
    )
    write_report("fig16a_throughput_graphs", table)
    for _, nadp, interleave in rows:
        assert nadp > interleave


def test_fig16b_throughput_vs_threads(run_once):
    graph = dataset("LJ")
    dense = dense_operand(graph)
    threads = (1, 2, 5, 10, 15, 20, 25, 30)
    session = telemetry_session(
        "fig16b_throughput_threads", graph="LJ", threads=list(threads)
    )

    def experiment():
        rows = []
        for t in threads:
            result = engine_for(graph, session=session, n_threads=t).multiply(
                graph.adjacency_csdb(), dense, compute=False
            )
            rows.append((t, result.throughput_nnz_per_s / 1e6))
        return rows

    rows = run_once(experiment)
    for t, tp in rows:
        session.event("throughput_point", threads=t, mnnz_s=tp)
    save_telemetry(session, "fig16b_throughput_threads")
    table = format_table(
        ["#threads", "throughput (Mnnz/s)"],
        [[t, f"{tp:.1f}"] for t, tp in rows],
        title="Fig. 16(b) — SpMM throughput vs #threads (LJ)",
    )
    write_report("fig16b_throughput_threads", table)
    throughputs = [tp for _, tp in rows]
    assert throughputs[3] > 2 * throughputs[0]  # 10 threads >> 1 thread
    assert max(throughputs) == max(throughputs[-4:])  # saturates late
